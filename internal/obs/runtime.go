package obs

import (
	"math"
	rtm "runtime/metrics"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// Runtime telemetry: a runtime/metrics-backed collector publishing the Go
// runtime's view of each process as ph_runtime_* series, so fleet heap,
// GC, goroutine, and scheduler pressure federate alongside the pipeline
// metrics. Each process — coordinator and every shard worker — runs its
// own collector against its own registry; the federation merge keeps the
// gauges per-shard and sums the counters/histograms.

// Sampled runtime/metrics names. These are stable documented names; a
// runtime that drops one simply reports its sample as KindBad, which the
// collector skips.
const (
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// gcPauseBuckets are the export buckets for the GC pause histogram —
// micro to tens-of-milliseconds, the range where pauses start eating into
// the capture budget.
var gcPauseBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1,
}

// Collector samples runtime/metrics into a registry. A nil *Collector is
// a valid no-op (the disabled path), so call sites never guard.
type Collector struct {
	samples []rtm.Sample

	heapBytes  *metrics.Gauge
	goroutines *metrics.Gauge
	gcCycles   *metrics.Counter
	gcPause    *metrics.Histogram
	schedLat   *metrics.GaugeVec

	// Cumulative states mirrored from the runtime so each Collect feeds
	// only the delta into the exported series.
	lastGCCycles uint64
	lastPauses   map[float64]uint64 // pause-bucket upper bound → cumulative count
}

// NewCollector registers the ph_runtime_* series on reg (nil means
// metrics.Default()) and returns a collector ready to sample.
func NewCollector(reg *metrics.Registry) *Collector {
	if reg == nil {
		reg = metrics.Default()
	}
	c := &Collector{
		samples: []rtm.Sample{
			{Name: rmHeapBytes},
			{Name: rmGoroutines},
			{Name: rmGCCycles},
			{Name: rmGCPauses},
			{Name: rmSchedLat},
		},
		heapBytes: reg.Gauge("ph_runtime_heap_bytes",
			"Bytes of live heap objects (runtime/metrics heap/objects)."),
		goroutines: reg.Gauge("ph_runtime_goroutines",
			"Current goroutine count."),
		gcCycles: reg.Counter("ph_runtime_gc_cycles_total",
			"Completed GC cycles."),
		gcPause: reg.Histogram("ph_runtime_gc_pause_seconds",
			"Distribution of stop-the-world GC pause durations.", gcPauseBuckets),
		schedLat: reg.GaugeVec("ph_runtime_sched_latency_seconds",
			"Goroutine scheduling latency quantiles since process start.", "quantile"),
		lastPauses: make(map[float64]uint64),
	}
	return c
}

// Collect takes one sample of every runtime series and folds it into the
// registry. Safe to call from the scrape/ticker goroutine only (the
// cumulative mirrors are not locked); a nil receiver is a no-op.
func (c *Collector) Collect() {
	if c == nil {
		return
	}
	rtm.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case rmHeapBytes:
			if s.Value.Kind() == rtm.KindUint64 {
				c.heapBytes.Set(float64(s.Value.Uint64()))
			}
		case rmGoroutines:
			if s.Value.Kind() == rtm.KindUint64 {
				c.goroutines.Set(float64(s.Value.Uint64()))
			}
		case rmGCCycles:
			if s.Value.Kind() == rtm.KindUint64 {
				v := s.Value.Uint64()
				if v > c.lastGCCycles {
					c.gcCycles.Add(float64(v - c.lastGCCycles))
					c.lastGCCycles = v
				}
			}
		case rmGCPauses:
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				c.collectPauses(s.Value.Float64Histogram())
			}
		case rmSchedLat:
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				c.collectSchedLatency(s.Value.Float64Histogram())
			}
		}
	}
}

// collectPauses converts the runtime's cumulative pause histogram into
// Observe calls on the exported histogram: each runtime bucket's count
// delta is observed at the bucket's midpoint, preserving counts exactly
// and durations to within a bucket width.
func (c *Collector) collectPauses(h *rtm.Float64Histogram) {
	for i, count := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		key := hi
		prev := c.lastPauses[key]
		if count <= prev {
			continue
		}
		delta := count - prev
		c.lastPauses[key] = count
		mid := bucketMid(lo, hi)
		for j := uint64(0); j < delta; j++ {
			c.gcPause.Observe(mid)
		}
	}
}

// collectSchedLatency reduces the runtime's cumulative scheduling-latency
// histogram to p50/p95/max gauges — quantiles are the operator-facing
// shape, and gauges federate per-shard.
func (c *Collector) collectSchedLatency(h *rtm.Float64Histogram) {
	var total uint64
	maxBound := 0.0
	for i, count := range h.Counts {
		total += count
		if count > 0 {
			if hi := h.Buckets[i+1]; !math.IsInf(hi, 1) {
				maxBound = hi
			} else {
				maxBound = h.Buckets[i]
			}
		}
	}
	if total == 0 {
		return
	}
	c.schedLat.With("p50").Set(histQuantile(h, total, 0.50))
	c.schedLat.With("p95").Set(histQuantile(h, total, 0.95))
	c.schedLat.With("max").Set(maxBound)
}

// histQuantile picks the upper bound of the bucket holding the q-th
// cumulative sample.
func histQuantile(h *rtm.Float64Histogram, total uint64, q float64) float64 {
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, count := range h.Counts {
		cum += count
		if cum >= rank {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return 0
}

// bucketMid is the representative observation value for a runtime bucket.
func bucketMid(lo, hi float64) float64 {
	if math.IsInf(lo, -1) {
		return hi
	}
	if math.IsInf(hi, 1) {
		return lo
	}
	return (lo + hi) / 2
}

// Start samples on an interval until the returned stop function is
// called. A nil receiver returns a no-op stop.
func (c *Collector) Start(interval time.Duration) (stop func()) {
	if c == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		c.Collect()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				c.Collect()
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}
