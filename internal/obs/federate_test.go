package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// testClock is a manually advanced time source.
type testClock struct{ now atomic.Int64 }

func newTestClock() *testClock {
	c := &testClock{}
	c.now.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}
func (c *testClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *testClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

// staticFetch serves canned payloads keyed by scrape URL.
func staticFetch(payloads map[string]string) func(context.Context, string) ([]byte, error) {
	return func(_ context.Context, url string) ([]byte, error) {
		p, ok := payloads[url]
		if !ok {
			return nil, fmt.Errorf("no payload for %s", url)
		}
		return []byte(p), nil
	}
}

func fixedTargets(ts ...Target) func() []Target {
	return func() []Target { return ts }
}

func getBody(t *testing.T, h http.Handler) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	return rr.Code, rr.Body.String()
}

func TestFederatorPassthroughUntilTargets(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ph_local_total", "local").Add(3)
	f := NewFederator(FederatorConfig{Local: reg})

	code, body := getBody(t, f.Handler())
	if code != http.StatusOK || !strings.Contains(body, "ph_local_total 3") {
		t.Fatalf("passthrough /metrics wrong: %d\n%s", code, body)
	}
	if strings.Contains(body, "shard=") {
		t.Fatalf("unfederated serving must not stamp shard labels:\n%s", body)
	}
	code, body = getBody(t, f.HealthHandler())
	if code != http.StatusOK {
		t.Fatalf("unfederated healthz should be 200, got %d: %s", code, body)
	}
}

func TestFederatorScrapeAndRollup(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ph_items_total", "x").Add(1)
	reg.Gauge("ph_depth", "x").Set(10)

	worker := "# TYPE ph_items_total counter\nph_items_total 5\n" +
		"# TYPE ph_depth gauge\nph_depth 3\n"
	clock := newTestClock()
	f := NewFederator(FederatorConfig{
		Local: reg,
		Targets: fixedTargets(
			Target{Name: "1", URL: "http://w1"},
			Target{Name: "2", URL: "http://w2"},
		),
		Clock: clock.Now,
		Fetch: staticFetch(map[string]string{
			"http://w1/metrics": worker,
			"http://w2/metrics": worker,
		}),
	})
	if ok := f.ScrapeOnce(context.Background()); ok != 2 {
		t.Fatalf("ScrapeOnce ok = %d, want 2", ok)
	}

	code, body := getBody(t, f.Handler())
	if code != http.StatusOK {
		t.Fatalf("rollup status %d", code)
	}
	// Counters: 1 (coord) + 5 + 5 summed into a fleet total.
	if !strings.Contains(body, "ph_items_total 11") {
		t.Fatalf("counters not summed:\n%s", body)
	}
	// Gauges: per-instance with the coordinator under its own label.
	for _, want := range []string{
		`ph_depth{shard="1"} 3`, `ph_depth{shard="2"} 3`, `ph_depth{shard="coord"} 10`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in rollup:\n%s", want, body)
		}
	}

	code, hbody := getBody(t, f.HealthHandler())
	if code != http.StatusOK {
		t.Fatalf("healthy fleet should be 200, got %d: %s", code, hbody)
	}
	var fh FleetHealth
	if err := json.Unmarshal([]byte(hbody), &fh); err != nil {
		t.Fatal(err)
	}
	if len(fh.Workers) != 2 || fh.Workers[0].Status != StatusOK || fh.Workers[1].Status != StatusOK {
		t.Fatalf("worker health wrong: %+v", fh.Workers)
	}
	if fh.Workers[0].LastScrapeAgeSeconds == nil {
		t.Fatal("scrape age missing on healthy worker")
	}
}

func TestFederatorHealthLifecycle(t *testing.T) {
	clock := newTestClock()
	payloads := map[string]string{"http://w1/metrics": "# TYPE g gauge\ng 1\n"}
	fetchErr := atomic.Bool{}
	f := NewFederator(FederatorConfig{
		Local:      metrics.NewRegistry(),
		Targets:    fixedTargets(Target{Name: "1", URL: "http://w1"}),
		Interval:   time.Second,
		StaleAfter: 3 * time.Second,
		Clock:      clock.Now,
		Fetch: func(ctx context.Context, url string) ([]byte, error) {
			if fetchErr.Load() {
				return nil, errors.New("connection refused")
			}
			return staticFetch(payloads)(ctx, url)
		},
	})

	// Known but never scraped: pending, unhealthy.
	f.mu.Lock()
	f.syncTargets()
	f.mu.Unlock()
	h, ok := f.health(nil)
	if ok || h.Workers[0].Status != StatusPending {
		t.Fatalf("want pending/unhealthy, got %+v ok=%v", h.Workers, ok)
	}

	// Successful scrape: ok.
	f.ScrapeOnce(context.Background())
	if h, ok = f.health(nil); !ok || h.Workers[0].Status != StatusOK {
		t.Fatalf("want ok/healthy, got %+v ok=%v", h.Workers, ok)
	}

	// Scrapes failing: down, with the error surfaced.
	fetchErr.Store(true)
	f.ScrapeOnce(context.Background())
	if h, ok = f.health(nil); ok || h.Workers[0].Status != StatusDown ||
		!strings.Contains(h.Workers[0].Error, "connection refused") {
		t.Fatalf("want down, got %+v ok=%v", h.Workers, ok)
	}

	// Recover, then let the payload age past StaleAfter without scraping.
	fetchErr.Store(false)
	f.ScrapeOnce(context.Background())
	clock.Advance(10 * time.Second)
	if h, ok = f.health(nil); ok || h.Workers[0].Status != StatusStale {
		t.Fatalf("want stale, got %+v ok=%v", h.Workers, ok)
	}

	// URL change (worker respawned): restarting until the new URL answers,
	// and the dead process's payload is dropped from the rollup.
	f.SetTargets(fixedTargets(Target{Name: "1", URL: "http://w1-respawn"}))
	f.mu.Lock()
	f.syncTargets()
	f.mu.Unlock()
	if h, ok = f.health(nil); ok || h.Workers[0].Status != StatusRestarting {
		t.Fatalf("want restarting, got %+v ok=%v", h.Workers, ok)
	}
	if body := renderRollup(t, f); strings.Contains(body, "g{") {
		t.Fatalf("stale payload survived the respawn:\n%s", body)
	}

	// 503 with detail from the handler while unhealthy.
	code, body := getBody(t, f.HealthHandler())
	if code != http.StatusServiceUnavailable || !strings.Contains(body, StatusRestarting) {
		t.Fatalf("want 503 with restarting detail, got %d: %s", code, body)
	}
}

func renderRollup(t *testing.T, f *Federator) string {
	t.Helper()
	_, body := getBody(t, f.Handler())
	return body
}

func TestFederatorWALHealthExtra(t *testing.T) {
	f := NewFederator(FederatorConfig{Local: metrics.NewRegistry()})
	extra := func(h *metrics.Health) {
		h.WAL = &metrics.WALHealth{LastSeq: 9, LastCheckpointSeq: 7, Segments: 2,
			LastSyncError: "disk full"}
	}
	code, body := getBody(t, f.HealthHandler(extra))
	if code != http.StatusOK {
		t.Fatalf("sync errors degrade but stay 200 (process is alive), got %d", code)
	}
	var fh FleetHealth
	if err := json.Unmarshal([]byte(body), &fh); err != nil {
		t.Fatal(err)
	}
	if fh.Status != "degraded" || fh.WAL == nil || fh.WAL.LastCheckpointSeq != 7 {
		t.Fatalf("WAL detail missing: %s", body)
	}
	// Nil extras are skipped.
	if code, _ := getBody(t, f.HealthHandler(nil)); code != http.StatusOK {
		t.Fatalf("nil extra should be skipped, got %d", code)
	}
}

func TestFederatorTargetRemovalForgotten(t *testing.T) {
	f := NewFederator(FederatorConfig{
		Local:   metrics.NewRegistry(),
		Targets: fixedTargets(Target{Name: "1", URL: "http://w1"}, Target{Name: "2", URL: "http://w2"}),
		Fetch:   staticFetch(map[string]string{"http://w1/metrics": "", "http://w2/metrics": ""}),
	})
	f.ScrapeOnce(context.Background())
	f.SetTargets(fixedTargets(Target{Name: "1", URL: "http://w1"}))
	f.ScrapeOnce(context.Background())
	h, _ := f.health(nil)
	if len(h.Workers) != 1 || h.Workers[0].Shard != "1" {
		t.Fatalf("removed target still reported: %+v", h.Workers)
	}
}

func TestFederatorUnparseablePayloadIsDown(t *testing.T) {
	f := NewFederator(FederatorConfig{
		Local:   metrics.NewRegistry(),
		Targets: fixedTargets(Target{Name: "1", URL: "http://w1"}),
		Fetch:   staticFetch(map[string]string{"http://w1/metrics": "{{{ not exposition"}),
	})
	if ok := f.ScrapeOnce(context.Background()); ok != 0 {
		t.Fatalf("parse failure counted as success: %d", ok)
	}
	h, ok := f.health(nil)
	if ok || h.Workers[0].Status != StatusDown || h.Workers[0].Error == "" {
		t.Fatalf("want down with parse error, got %+v", h.Workers)
	}
}

// TestFederatorStalledWorkerBoundedByTimeout is the scrape-isolation
// regression: a worker whose admin endpoint hangs must cost one scrape
// round at most Timeout, not block indefinitely — and the hung member is
// reported down while a healthy sibling still lands in the rollup.
func TestFederatorStalledWorkerBoundedByTimeout(t *testing.T) {
	healthy := "# TYPE c counter\nc 4\n"
	f := NewFederator(FederatorConfig{
		Local:   metrics.NewRegistry(),
		Timeout: 50 * time.Millisecond,
		Targets: fixedTargets(Target{Name: "1", URL: "http://hung"}, Target{Name: "2", URL: "http://ok"}),
		Fetch: func(ctx context.Context, url string) ([]byte, error) {
			if strings.HasPrefix(url, "http://hung") {
				<-ctx.Done() // a stalled worker: never answers
				return nil, ctx.Err()
			}
			return []byte(healthy), nil
		},
	})
	start := time.Now()
	ok := f.ScrapeOnce(context.Background())
	elapsed := time.Since(start)
	if ok != 1 {
		t.Fatalf("healthy sibling not scraped: ok=%d", ok)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("scrape round not bounded by timeout: %v", elapsed)
	}
	h, healthyAll := f.health(nil)
	if healthyAll || h.Workers[0].Status != StatusDown {
		t.Fatalf("hung worker not reported down: %+v", h.Workers)
	}
	if body := renderRollup(t, f); !strings.Contains(body, "c 4") {
		t.Fatalf("healthy worker's payload missing from rollup:\n%s", body)
	}
}

func TestFederatorStartScrapesOnInterval(t *testing.T) {
	var scrapes atomic.Int32
	f := NewFederator(FederatorConfig{
		Local:    metrics.NewRegistry(),
		Interval: 5 * time.Millisecond,
		Targets:  fixedTargets(Target{Name: "1", URL: "http://w1"}),
		Fetch: func(context.Context, string) ([]byte, error) {
			scrapes.Add(1)
			return []byte(""), nil
		},
	})
	stop := f.Start()
	deadline := time.Now().Add(2 * time.Second)
	for scrapes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if scrapes.Load() < 2 {
		t.Fatalf("scrape loop did not run: %d scrapes", scrapes.Load())
	}
}

func TestHTTPFetch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprint(w, "# TYPE up gauge\nup 1\n")
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	body, err := httpFetch(context.Background(), srv.URL+"/metrics")
	if err != nil || !strings.Contains(string(body), "up 1") {
		t.Fatalf("httpFetch: %v %q", err, body)
	}
	if _, err := httpFetch(context.Background(), srv.URL+"/nope"); err == nil {
		t.Fatal("non-200 fetch should error")
	}
	if _, err := httpFetch(context.Background(), "http://\x7f"); err == nil {
		t.Fatal("bad URL should error")
	}
}
