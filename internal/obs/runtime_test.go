package obs

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

func sampleValue(reg *metrics.Registry, name string) (metrics.Sample, bool) {
	for _, fam := range reg.Snapshot() {
		if fam.Name == name && len(fam.Samples) > 0 {
			return fam.Samples[0], true
		}
	}
	return metrics.Sample{}, false
}

func TestCollectorPublishesRuntimeSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg)
	runtime.GC() // guarantee at least one cycle and one pause
	c.Collect()

	if s, ok := sampleValue(reg, "ph_runtime_heap_bytes"); !ok || s.Value <= 0 {
		t.Fatalf("heap bytes not published: %+v ok=%v", s, ok)
	}
	if s, ok := sampleValue(reg, "ph_runtime_goroutines"); !ok || s.Value < 1 {
		t.Fatalf("goroutines not published: %+v ok=%v", s, ok)
	}
	cycles, ok := sampleValue(reg, "ph_runtime_gc_cycles_total")
	if !ok || cycles.Value < 1 {
		t.Fatalf("gc cycles not published: %+v ok=%v", cycles, ok)
	}
	if s, ok := sampleValue(reg, "ph_runtime_gc_pause_seconds"); !ok || s.Count == 0 {
		t.Fatalf("gc pause histogram empty after forced GC: %+v ok=%v", s, ok)
	}

	// Delta semantics: a second Collect with no new cycles must not
	// re-count the cumulative totals.
	c.Collect()
	again, _ := sampleValue(reg, "ph_runtime_gc_cycles_total")
	if again.Value >= 2*cycles.Value && cycles.Value > 0 {
		t.Fatalf("gc cycles double-counted: %v then %v", cycles.Value, again.Value)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Collect()
	stop := c.Start(time.Millisecond)
	stop()
}

func TestCollectorStartSamples(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg)
	stop := c.Start(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := sampleValue(reg, "ph_runtime_goroutines"); ok && s.Value > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("Start never sampled")
}

func TestCollectPausesObservesDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg)
	h := &rtm.Float64Histogram{
		Counts:  []uint64{2, 1},
		Buckets: []float64{0, 1e-3, 1e-2},
	}
	c.collectPauses(h)
	s, _ := sampleValue(reg, "ph_runtime_gc_pause_seconds")
	if s.Count != 3 {
		t.Fatalf("pause count = %d, want 3", s.Count)
	}
	// Same cumulative state again: no new observations.
	c.collectPauses(h)
	if s, _ = sampleValue(reg, "ph_runtime_gc_pause_seconds"); s.Count != 3 {
		t.Fatalf("cumulative histogram re-observed: count = %d", s.Count)
	}
	// One more pause in the second bucket: exactly one delta observation.
	h.Counts[1] = 2
	c.collectPauses(h)
	if s, _ = sampleValue(reg, "ph_runtime_gc_pause_seconds"); s.Count != 4 {
		t.Fatalf("delta not observed: count = %d", s.Count)
	}
}

func TestCollectSchedLatencyQuantiles(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg)
	h := &rtm.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 1e-6, 1e-4, math.Inf(1)},
	}
	c.collectSchedLatency(h)
	got := map[string]float64{}
	for _, fam := range reg.Snapshot() {
		if fam.Name != "ph_runtime_sched_latency_seconds" {
			continue
		}
		for _, s := range fam.Samples {
			got[s.Labels[0].Value] = s.Value
		}
	}
	if got["p50"] != 1e-6 {
		t.Fatalf("p50 = %v, want 1e-6", got["p50"])
	}
	if got["p95"] != 1e-4 {
		t.Fatalf("p95 = %v, want 1e-4", got["p95"])
	}
	if got["max"] != 1e-4 {
		t.Fatalf("max = %v, want 1e-4 (last finite bound)", got["max"])
	}

	// All-zero histogram: nothing published, no division by zero.
	c2 := NewCollector(metrics.NewRegistry())
	c2.collectSchedLatency(&rtm.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}})
}

func TestHistQuantileAndBucketMid(t *testing.T) {
	h := &rtm.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{math.Inf(-1), 0.5, math.Inf(1)},
	}
	if q := histQuantile(h, 2, 0.5); q != 0.5 {
		t.Fatalf("histQuantile(0.5) = %v", q)
	}
	if q := histQuantile(h, 2, 1.0); q != 0.5 {
		t.Fatalf("+Inf bucket should fall back to its lower bound: %v", q)
	}
	if q := histQuantile(&rtm.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0, 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
	if m := bucketMid(math.Inf(-1), 2); m != 2 {
		t.Fatalf("bucketMid(-Inf, 2) = %v", m)
	}
	if m := bucketMid(3, math.Inf(1)); m != 3 {
		t.Fatalf("bucketMid(3, +Inf) = %v", m)
	}
	if m := bucketMid(1, 3); m != 2 {
		t.Fatalf("bucketMid(1, 3) = %v", m)
	}
}

// BenchmarkObsDisabled measures the disabled observability path the
// pipeline pays unconditionally: a nil watchdog heartbeat and a nil
// collector sample. Both must stay branch-cheap.
func BenchmarkObsDisabled(b *testing.B) {
	var w *Watchdog
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Heartbeat("match")
		c.Collect()
	}
}
