package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// traceServer mounts the handler exactly as the daemons do.
func traceServer(t *testing.T, tr *Tracer) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("GET /debug/traces", tr.Handler())
	mux.Handle("GET /debug/traces/{id}", tr.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("invalid JSON %q: %v", body, err)
		}
	}
	return resp.StatusCode
}

func TestHandlerListAndFilters(t *testing.T) {
	tr, clk := simTracer(Config{})
	// Three traces: a slow capture with a classify span, a fast capture,
	// and a label batch.
	a := tr.Start("capture")
	sp := a.StartSpan("classify")
	clk.Advance(20 * time.Millisecond)
	sp.End()
	a.Finish()
	b := tr.Start("capture")
	clk.Advance(time.Millisecond)
	b.Finish()
	c := tr.Start("label")
	c.StartSpan("label_rules").End()
	clk.Advance(5 * time.Millisecond)
	c.Finish()

	srv := traceServer(t, tr)

	var list TraceList
	if code := getJSON(t, srv.URL+"/debug/traces", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if list.Count != 3 || !list.Enabled || len(list.Traces) != 3 {
		t.Fatalf("list %+v", list)
	}
	if list.Traces[0].ID != "t-000003" || list.Traces[2].ID != "t-000001" {
		t.Fatalf("not newest-first: %s .. %s", list.Traces[0].ID, list.Traces[2].ID)
	}

	getJSON(t, srv.URL+"/debug/traces?stage=classify", &list)
	if list.Count != 1 || list.Traces[0].ID != "t-000001" {
		t.Fatalf("stage filter %+v", list)
	}
	getJSON(t, srv.URL+"/debug/traces?name=label", &list)
	if list.Count != 1 || list.Traces[0].Name != "label" {
		t.Fatalf("name filter %+v", list)
	}
	getJSON(t, srv.URL+"/debug/traces?min=10ms", &list)
	if list.Count != 1 || list.Traces[0].ID != "t-000001" {
		t.Fatalf("min filter %+v", list)
	}
	getJSON(t, srv.URL+"/debug/traces?limit=2", &list)
	if list.Count != 2 {
		t.Fatalf("limit filter %+v", list)
	}

	if code := getJSON(t, srv.URL+"/debug/traces?min=banana", &list); code != http.StatusBadRequest {
		t.Fatalf("bad min accepted: %d", code)
	}
	if code := getJSON(t, srv.URL+"/debug/traces?limit=-1", &list); code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", code)
	}
}

func TestHandlerSingleTrace(t *testing.T) {
	tr, clk := simTracer(Config{})
	a := tr.Start("capture")
	sp := a.StartSpan("feature_extract")
	clk.Advance(3 * time.Millisecond)
	sp.End()
	a.Finish()

	srv := traceServer(t, tr)
	var info TraceInfo
	if code := getJSON(t, srv.URL+"/debug/traces/t-000001", &info); code != http.StatusOK {
		t.Fatalf("get status %d", code)
	}
	if info.ID != "t-000001" || len(info.Spans) != 1 ||
		info.Spans[0].Stage != "feature_extract" ||
		info.Spans[0].DurationNS != (3*time.Millisecond).Nanoseconds() {
		t.Fatalf("trace %+v", info)
	}
	if code := getJSON(t, srv.URL+"/debug/traces/t-000099", &info); code != http.StatusNotFound {
		t.Fatalf("missing trace status %d", code)
	}
}

func TestHandlerDeterministicJSON(t *testing.T) {
	// Two identical simulated runs must serve byte-identical payloads.
	run := func() string {
		tr, clk := simTracer(Config{})
		a := tr.Start("capture")
		a.SetAttr("tweet", "7")
		sp := a.StartSpan("feature_extract")
		clk.Advance(2 * time.Millisecond)
		sp.End()
		a.Finish()
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
		return rec.Body.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("payloads differ:\n%s\n---\n%s", first, second)
	}
	if !json.Valid([]byte(first)) {
		t.Fatalf("payload not valid JSON: %s", first)
	}
}

func TestHandlerPathFallback(t *testing.T) {
	// Mounted without pattern wildcards (e.g. behind a bare mux), the id
	// must still resolve from the URL path.
	tr, _ := simTracer(Config{})
	tr.Start("capture").Finish()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/t-000001", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("fallback path status %d", rec.Code)
	}
	var info TraceInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil || info.ID != "t-000001" {
		t.Fatalf("fallback body %s err %v", rec.Body.String(), err)
	}
}
