package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
)

// simTracer builds an enabled tracer on a simulated clock whose hands we
// control explicitly, so every duration in these tests is exact.
func simTracer(cfg Config) (*Tracer, *simclock.Simulated) {
	clk := simclock.NewSimulated(time.Time{})
	cfg.Enabled = true
	cfg.Clock = clk.Now
	return New(cfg), clk
}

func TestTraceLifecycle(t *testing.T) {
	tr, clk := simTracer(Config{})
	a := tr.Start("capture")
	if a == nil {
		t.Fatal("enabled tracer returned nil trace")
	}
	if a.ID() != "t-000001" || a.Name() != "capture" {
		t.Fatalf("id=%q name=%q", a.ID(), a.Name())
	}
	a.SetAttr("tweet", "42")
	a.SetAttr("tweet", "43") // overwrite, not append

	sp := a.StartSpan("feature_extract")
	clk.Advance(5 * time.Millisecond)
	sp.SetAttr("features", "58")
	sp.End()
	sp.End() // idempotent
	clk.Advance(time.Millisecond)
	a.Finish()
	a.Finish() // idempotent

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(recent))
	}
	got := recent[0]
	if !got.Finished || got.DurationNS != (6 * time.Millisecond).Nanoseconds() {
		t.Fatalf("trace snapshot %+v", got)
	}
	if len(got.Attrs) != 1 || got.Attrs[0] != (KV{"tweet", "43"}) {
		t.Fatalf("attrs %+v", got.Attrs)
	}
	span, ok := got.Span("feature_extract")
	if !ok || span.DurationNS != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("span %+v ok=%v", span, ok)
	}
	if len(span.Attrs) != 1 || span.Attrs[0] != (KV{"features", "58"}) {
		t.Fatalf("span attrs %+v", span.Attrs)
	}
	if span.End() != span.Start.Add(5*time.Millisecond) {
		t.Fatalf("span end %v", span.End())
	}

	if _, ok := tr.Get("t-000001"); !ok {
		t.Fatal("Get missed retained trace")
	}
	if _, ok := tr.Get("t-999999"); ok {
		t.Fatal("Get found unknown trace")
	}
}

func TestRingEviction(t *testing.T) {
	tr, _ := simTracer(Config{Buffer: 3})
	for i := 0; i < 5; i++ {
		tr.Start("w").Finish()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring kept %d, want 3", len(recent))
	}
	want := []string{"t-000003", "t-000004", "t-000005"}
	for i, w := range want {
		if recent[i].ID != w {
			t.Fatalf("ring[%d] = %s, want %s (oldest first)", i, recent[i].ID, w)
		}
	}
}

func TestDisabledAndNilTracerAreNoops(t *testing.T) {
	var nilTracer *Tracer
	disabled := New(Config{}) // Enabled: false
	for name, tracer := range map[string]*Tracer{"nil": nilTracer, "disabled": disabled} {
		if tracer.Enabled() {
			t.Fatalf("%s tracer reports enabled", name)
		}
		trc := tracer.Start("x")
		if trc != nil {
			t.Fatalf("%s tracer started a real trace", name)
		}
		// The whole chain must be callable on nil values.
		trc.SetAttr("k", "v")
		sp := trc.StartSpan("y")
		sp.SetAttr("k", "v")
		sp.End()
		trc.AddSpan("z", time.Time{}, time.Time{})
		trc.Finish()
		if trc.ID() != "" || trc.Name() != "" {
			t.Fatalf("%s trace has identity", name)
		}
		if got := trc.Snapshot(); len(got.Spans) != 0 {
			t.Fatalf("%s snapshot %+v", name, got)
		}
		if got := tracer.Recent(); len(got) != 0 {
			t.Fatalf("%s ring %+v", name, got)
		}
		if s := tracer.Summary(3); s.Traces != 0 || len(s.Stages) != 0 {
			t.Fatalf("%s summary %+v", name, s)
		}
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	disabled := New(Config{})
	for name, tracer := range map[string]*Tracer{"nil": nil, "disabled": disabled} {
		allocs := testing.AllocsPerRun(100, func() {
			tr := tracer.Start("capture")
			sp := tr.StartSpan("feature_extract")
			sp.End()
			tr.Finish()
		})
		if allocs != 0 {
			t.Fatalf("%s tracer hot path allocates %.1f/op, want 0", name, allocs)
		}
	}
}

func TestObserverReceivesEverySpan(t *testing.T) {
	var mu sync.Mutex
	sums := make(map[string]float64)
	counts := make(map[string]int)
	tr, clk := simTracer(Config{Observer: func(stage string, secs float64) {
		mu.Lock()
		sums[stage] += secs
		counts[stage]++
		mu.Unlock()
	}})

	a := tr.Start("capture")
	sp := a.StartSpan("classify")
	clk.Advance(10 * time.Millisecond)
	sp.End()
	start := clk.Now()
	clk.Advance(30 * time.Millisecond)
	a.AddSpan("label_rules", start, clk.Now())
	a.Finish()

	if counts["classify"] != 1 || counts["label_rules"] != 1 {
		t.Fatalf("observer counts %+v", counts)
	}
	if sums["classify"] != 0.010 || sums["label_rules"] != 0.030 {
		t.Fatalf("observer sums %+v", sums)
	}
}

func TestSlowSpanEmitsEvent(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, LevelWarn)
	tr, clk := simTracer(Config{SlowSpan: 50 * time.Millisecond, Logger: logger})
	logger.SetClock(clk.Now)

	a := tr.Start("capture")
	fast := a.StartSpan("fast_stage")
	clk.Advance(10 * time.Millisecond)
	fast.End()
	slow := a.StartSpan("slow_stage")
	clk.Advance(80 * time.Millisecond)
	slow.End()
	a.Finish()

	out := buf.String()
	if strings.Contains(out, "fast_stage") {
		t.Fatalf("fast span logged: %s", out)
	}
	if !strings.Contains(out, "slow span") || !strings.Contains(out, "stage=slow_stage") ||
		!strings.Contains(out, "trace=t-000001") {
		t.Fatalf("slow span event missing fields: %s", out)
	}
}

func TestAddSpanExtendsFinishedTrace(t *testing.T) {
	tr, clk := simTracer(Config{})
	a := tr.Start("capture")
	clk.Advance(time.Millisecond)
	a.Finish()

	start := clk.Now()
	clk.Advance(7 * time.Millisecond)
	a.AddSpan("label_manual", start, clk.Now(), KV{"batch", "t-000002"})
	a.AddSpan("bogus", clk.Now(), clk.Now().Add(-time.Hour)) // end < start clamps

	got := tr.Recent()[0]
	if got.DurationNS != (8 * time.Millisecond).Nanoseconds() {
		t.Fatalf("late span did not extend trace: %+v", got)
	}
	span, ok := got.Span("label_manual")
	if !ok || span.DurationNS != (7 * time.Millisecond).Nanoseconds() {
		t.Fatalf("adopted span %+v", span)
	}
	if len(span.Attrs) != 1 || span.Attrs[0] != (KV{"batch", "t-000002"}) {
		t.Fatalf("adopted span attrs %+v", span.Attrs)
	}
	if bogus, _ := got.Span("bogus"); bogus.DurationNS != 0 {
		t.Fatalf("negative span not clamped: %+v", bogus)
	}
}

func TestOpenSpanSnapshotsAsZeroDuration(t *testing.T) {
	tr, clk := simTracer(Config{})
	a := tr.Start("capture")
	a.StartSpan("never_ended")
	clk.Advance(time.Second)
	a.Finish()
	span, ok := tr.Recent()[0].Span("never_ended")
	if !ok || span.DurationNS != 0 {
		t.Fatalf("open span %+v", span)
	}
}

func TestSnapshotOrdersConcurrentSpans(t *testing.T) {
	// Spans appended from concurrent goroutines at the same virtual
	// instant must snapshot in a deterministic order.
	for round := 0; round < 10; round++ {
		tr, _ := simTracer(Config{})
		a := tr.Start("batch")
		stages := []string{"delta", "alpha", "charlie", "bravo"}
		var wg sync.WaitGroup
		for _, st := range stages {
			wg.Add(1)
			go func(st string) {
				defer wg.Done()
				a.StartSpan(st).End()
			}(st)
		}
		wg.Wait()
		a.Finish()
		got := tr.Recent()[0]
		for i, want := range []string{"alpha", "bravo", "charlie", "delta"} {
			if got.Spans[i].Stage != want {
				t.Fatalf("round %d span order %+v", round, got.Spans)
			}
		}
	}
}

func TestSetActiveRestores(t *testing.T) {
	tr, _ := simTracer(Config{})
	outer := tr.Start("outer")
	inner := tr.Start("inner")
	if Active() != nil {
		t.Fatal("active trace leaked from a previous test")
	}
	restoreOuter := SetActive(outer)
	if Active() != outer {
		t.Fatal("outer not active")
	}
	restoreInner := SetActive(inner)
	if Active() != inner {
		t.Fatal("inner not active")
	}
	restoreInner()
	if Active() != outer {
		t.Fatal("restore did not reinstate outer")
	}
	restoreOuter()
	if Active() != nil {
		t.Fatal("restore did not clear active")
	}
}

func TestConfigureResetsRing(t *testing.T) {
	tr, clk := simTracer(Config{Buffer: 8})
	tr.Start("x").Finish()
	tr.Configure(Config{Enabled: true, Buffer: 2, Clock: clk.Now})
	if got := tr.Recent(); len(got) != 0 {
		t.Fatalf("ring survived reconfigure: %+v", got)
	}
	tr.Configure(Config{Enabled: false})
	if tr.Enabled() || tr.Start("y") != nil {
		t.Fatal("reconfigure did not disable tracer")
	}
}

func TestSummaryStats(t *testing.T) {
	tr, clk := simTracer(Config{})
	durations := []time.Duration{ // classify spans: 1..20ms
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
	}
	for _, d := range durations {
		a := tr.Start("capture")
		sp := a.StartSpan("classify")
		clk.Advance(d * time.Millisecond)
		sp.End()
		a.Finish()
	}
	s := tr.Summary(3)
	if s.Traces != 20 || s.Spans != 20 || len(s.Stages) != 1 {
		t.Fatalf("summary %+v", s)
	}
	st := s.Stages[0]
	if st.Stage != "classify" || st.Count != 20 {
		t.Fatalf("stage %+v", st)
	}
	if st.P50Seconds != 0.010 || st.P95Seconds != 0.019 || st.MaxSeconds != 0.020 {
		t.Fatalf("percentiles %+v", st)
	}
	wantSum := 0.0
	for _, d := range durations {
		wantSum += (d * time.Millisecond).Seconds()
	}
	if diff := st.SumSeconds - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sum %v want %v", st.SumSeconds, wantSum)
	}
	if len(s.Slowest) != 3 || s.Slowest[0].ID != "t-000020" ||
		s.Slowest[0].DurationSeconds != 0.020 {
		t.Fatalf("slowest %+v", s.Slowest)
	}
}

func TestConcurrentTracerUse(t *testing.T) {
	tr, _ := simTracer(Config{Buffer: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := tr.Start("capture")
				sp := a.StartSpan("stage")
				sp.End()
				a.SetAttr("i", "1")
				a.Finish()
				tr.Recent()
				tr.Summary(2)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 16 {
		t.Fatalf("ring size %d", got)
	}
}
