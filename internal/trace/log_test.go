package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
)

func simLogger(level Level) (*Logger, *strings.Builder) {
	var buf strings.Builder
	l := NewLogger(&buf, level)
	clk := simclock.NewSimulated(time.Unix(0, 0).UTC())
	l.SetClock(clk.Now)
	return l, &buf
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, buf := simLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Fatalf("wrong lines: %q", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with filtering")
	}
	l.SetLevel(LevelDebug)
	if l.Level() != LevelDebug || !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel did not take")
	}
}

func TestLoggerLogfmtFormat(t *testing.T) {
	l, buf := simLogger(LevelInfo)
	l.Info("stream connected", "attempt", 3, "url", "http://x/stream", "note", "has space", "eq", "a=b")
	line := strings.TrimSpace(buf.String())
	want := `ts=1970-01-01T00:00:00Z level=info msg="stream connected" attempt=3 url=http://x/stream note="has space" eq="a=b"`
	if line != want {
		t.Fatalf("line\n got %q\nwant %q", line, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	l, buf := simLogger(LevelInfo)
	l.SetJSON(true)
	l.Info("span", "dur", 0.25, "n", int64(7), "u", uint64(8), "ok", true, "s", "x y")
	line := strings.TrimSpace(buf.String())
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
	if got["level"] != "info" || got["msg"] != "span" || got["dur"] != 0.25 ||
		got["n"] != float64(7) || got["u"] != float64(8) || got["ok"] != true || got["s"] != "x y" {
		t.Fatalf("fields %+v", got)
	}
	if got["ts"] != "1970-01-01T00:00:00Z" {
		t.Fatalf("ts %v", got["ts"])
	}
}

func TestLoggerOddKVPairs(t *testing.T) {
	l, buf := simLogger(LevelInfo)
	l.Info("m", "dangling")
	if !strings.Contains(buf.String(), "dangling=!MISSING") {
		t.Fatalf("odd kv not flagged: %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", "k", "v")
	l.Warn("w")
	l.Error("e")
	l.SetLevel(LevelDebug)
	l.SetJSON(true)
	l.SetClock(nil)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if l.Level() != LevelError {
		t.Fatal("nil logger level")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, " warn ": LevelWarn,
		"Warning": LevelWarn, "error": LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestLevelString(t *testing.T) {
	if LevelDebug.String() != "debug" || LevelError.String() != "error" {
		t.Fatal("level strings")
	}
	if Level(42).String() != "level(42)" {
		t.Fatalf("unknown level string %q", Level(42).String())
	}
}

func TestLoggerConcurrentLinesIntact(t *testing.T) {
	l, buf := simLogger(LevelInfo)
	var mu sync.Mutex
	safe := &lockedWriter{mu: &mu, b: buf}
	l2 := NewLogger(safe, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				l2.Info("tick", "g", i)
			}
		}()
	}
	wg.Wait()
	_ = l
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 100 {
		t.Fatalf("want 100 lines, got %d", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("torn line %q", line)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
