// Package trace is the per-event observability layer next to the
// aggregate registry of internal/metrics: a dependency-free span tracer
// that records each capture's journey through the pipeline stages —
// capture, feature extraction, the labeling passes, classification, PGE
// attribution — as a Trace of timed Spans, keeps a bounded ring buffer of
// recent traces for /debug/traces inspection, and emits leveled structured
// log events (log.go), including automatic events for spans that exceed a
// slow-span threshold.
//
// Aggregates answer "how slow is stage X on average"; traces answer "why
// was THIS capture slow". Both views stay consistent because every
// completed span is also fed to the Config.Observer hook, which the
// daemons wire to the ph_trace_span_seconds histogram family
// (metrics.Registry.SpanObserver), so per-stage histogram sums equal the
// summed span durations by construction.
//
// Timing comes from an injectable clock so simclock-driven tests replay
// bit-for-bit; the default is time.Now, whose monotonic reading makes
// span durations immune to wall-clock steps.
//
// A nil *Tracer, a disabled Tracer, a nil *Trace, and a nil *Span are all
// valid no-op receivers: the disabled hot path performs one atomic load
// and allocates nothing (enforced by TestDisabledTracerZeroAlloc), so
// instrumented code never guards call sites.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuffer is the ring-buffer capacity used when Config.Buffer is
// zero or negative: deep enough to hold several rotations' worth of
// capture traces on the default workloads, small enough (~a few hundred
// KB) to sit in every daemon by default.
const DefaultBuffer = 256

// KV is one attribute of a trace or span. Attributes are ordered (no map)
// so snapshots marshal deterministically.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Config parameterizes a Tracer.
type Config struct {
	// Enabled turns span recording on. A disabled tracer returns nil
	// traces and costs one atomic load per Start call.
	Enabled bool

	// Buffer is the completed-trace ring capacity (<= 0 ⇒ DefaultBuffer).
	Buffer int

	// SlowSpan is the threshold at or above which a completed span
	// auto-emits a warn-level event through Logger. Zero disables the
	// events.
	SlowSpan time.Duration

	// Clock supplies timestamps; nil means time.Now. Simulation tests
	// inject a simclock-driven function so traces replay exactly.
	Clock func() time.Time

	// Logger receives slow-span events; nil drops them.
	Logger *Logger

	// Observer receives every completed span (stage, duration in
	// seconds); nil drops them. metrics.Registry.SpanObserver returns an
	// implementation feeding the per-stage latency histograms.
	Observer func(stage string, seconds float64)
}

// Tracer creates traces and retains the most recent completed ones in a
// bounded ring buffer. All methods are safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu   sync.Mutex
	cfg  Config
	ring []*Trace // ring[next] is the oldest entry once full
	next int
}

// New creates a tracer from cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{}
	t.Configure(cfg)
	return t
}

var defaultTracer = New(Config{})

// Default returns the process-wide tracer. It starts disabled; daemons
// enable and size it from their -trace-buffer / -slow-span flags via
// Configure.
func Default() *Tracer { return defaultTracer }

// Configure replaces the tracer's configuration and resets the ring
// buffer. Traces already started keep the clock they were created with.
func (t *Tracer) Configure(cfg Config) {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	t.mu.Lock()
	t.cfg = cfg
	t.ring = make([]*Trace, 0, cfg.Buffer)
	t.next = 0
	t.mu.Unlock()
	t.enabled.Store(cfg.Enabled)
}

// Enabled reports whether the tracer records traces.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Start begins a trace named after the pipeline step that owns it. It
// returns nil — a valid no-op trace — when the tracer is nil or disabled.
func (t *Tracer) Start(name string) *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	t.mu.Lock()
	clock := t.cfg.Clock
	t.mu.Unlock()
	return &Trace{
		tracer: t,
		id:     fmt.Sprintf("t-%06d", t.seq.Add(1)),
		name:   name,
		start:  clock(),
		clock:  clock,
	}
}

// record files a finished trace into the ring buffer, evicting the oldest
// entry when full.
func (t *Tracer) record(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cap(t.ring) == 0 {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
}

// spanDone fans a completed span out to the observer and, past the
// slow-span threshold, the event log.
func (t *Tracer) spanDone(tr *Trace, stage string, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	observer := t.cfg.Observer
	slow := t.cfg.SlowSpan
	logger := t.cfg.Logger
	t.mu.Unlock()
	if observer != nil {
		observer(stage, dur.Seconds())
	}
	if slow > 0 && dur >= slow && logger != nil {
		logger.Warn("slow span",
			"trace", tr.id, "name", tr.name, "stage", stage, "duration", dur)
	}
}

// Recent snapshots the retained traces, oldest first. The result is
// detached from live state.
func (t *Tracer) Recent() []TraceInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) && cap(t.ring) > 0 {
		traces = append(traces, t.ring[t.next:]...)
		traces = append(traces, t.ring[:t.next]...)
	} else {
		traces = append(traces, t.ring...)
	}
	t.mu.Unlock()
	out := make([]TraceInfo, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.Snapshot())
	}
	return out
}

// Get returns the snapshot of the retained trace with the given id.
func (t *Tracer) Get(id string) (TraceInfo, bool) {
	for _, info := range t.Recent() {
		if info.ID == id {
			return info, true
		}
	}
	return TraceInfo{}, false
}

// Trace is one recorded pipeline journey: a named window of time with
// child spans. Methods are safe for concurrent use and are no-ops on a
// nil receiver.
//
// A trace enters the tracer's ring buffer when Finish is called; later
// spans may still be attached (batch stages enrich already-captured
// traces), which extends the trace's end time.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	clock  func() time.Time

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	finished bool
	attrs    []KV
	spans    []*Span
}

// ID returns the trace id ("t-000042"); ids are a per-tracer sequence, so
// simulated runs produce identical ids across replays.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Name returns the pipeline step the trace was started for.
func (tr *Trace) Name() string {
	if tr == nil {
		return ""
	}
	return tr.name
}

// SetAttr attaches (or overwrites) a trace attribute.
func (tr *Trace) SetAttr(key, value string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.attrs = setKV(tr.attrs, key, value)
}

// StartSpan opens a child span for a pipeline stage.
func (tr *Trace) StartSpan(stage string) *Span {
	if tr == nil {
		return nil
	}
	s := &Span{tr: tr, stage: stage, start: tr.clock()}
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// AddSpan records an already-timed span, e.g. when a batch stage's
// measured window is attached to every capture trace that went through
// it. The span feeds the observer and slow-span log like any other.
func (tr *Trace) AddSpan(stage string, start, end time.Time, attrs ...KV) {
	if tr == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	s := &Span{tr: tr, stage: stage, start: start, end: end, ended: true}
	s.attrs = append(s.attrs, attrs...)
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	if tr.finished && end.After(tr.end) {
		tr.end = end
	}
	tr.mu.Unlock()
	tr.tracer.spanDone(tr, stage, end.Sub(start))
}

// Finish stamps the trace's end time and files it into the tracer's ring
// buffer. Finish is idempotent; only the first call records.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.end = tr.clock()
	tr.mu.Unlock()
	tr.tracer.record(tr)
}

// Span is one timed pipeline stage within a trace. Methods are no-ops on
// a nil receiver.
type Span struct {
	tr    *Trace
	stage string
	start time.Time
	end   time.Time
	ended bool
	attrs []KV
}

// SetAttr attaches (or overwrites) a span attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.attrs = setKV(s.attrs, key, value)
}

// End closes the span and reports it to the tracer's observer and
// slow-span log. End is idempotent; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.ended {
		s.tr.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tr.clock()
	if s.tr.finished && s.end.After(s.tr.end) {
		s.tr.end = s.end // late span on a recorded trace extends it
	}
	stage, dur := s.stage, s.end.Sub(s.start)
	s.tr.mu.Unlock()
	s.tr.tracer.spanDone(s.tr, stage, dur)
}

// setKV overwrites key in kvs or appends it.
func setKV(kvs []KV, key, value string) []KV {
	for i := range kvs {
		if kvs[i].Key == key {
			kvs[i].Value = value
			return kvs
		}
	}
	return append(kvs, KV{Key: key, Value: value})
}

// active is the process-wide currently-executing batch trace. Batch
// stages (labeling, training) publish their trace here so code they fan
// out through — notably the parallel worker pool — can attach spans
// without explicit plumbing.
var active atomic.Pointer[Trace]

// SetActive publishes tr as the active batch trace and returns a restore
// function reinstating the previous one. Intended for defer:
//
//	defer trace.SetActive(tr)()
func SetActive(tr *Trace) (restore func()) {
	prev := active.Swap(tr)
	return func() { active.Store(prev) }
}

// Active returns the current batch trace, or nil when none is published.
// The load is a single atomic pointer read, cheap enough for hot paths.
func Active() *Trace {
	return active.Load()
}
