package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// TraceList is the /debug/traces response body.
type TraceList struct {
	// Count is the number of traces returned after filtering.
	Count int `json:"count"`
	// Enabled mirrors the tracer's state so a scraper can tell "no
	// traffic" from "tracing off".
	Enabled bool        `json:"enabled"`
	Traces  []TraceInfo `json:"traces"`
}

// Handler serves the trace ring buffer as JSON. Mount it at both
// GET /debug/traces and GET /debug/traces/{id}:
//
//	/debug/traces            — newest-first list; filters:
//	    ?stage=feature_extract   only traces containing a span of the stage
//	    ?name=capture            only traces with this root name
//	    ?min=5ms                 only traces at least this long
//	    ?limit=50                at most N traces (default 100, 0 = all)
//	/debug/traces/{id}       — one trace by id, 404 when evicted/unknown
//
// Responses are deterministic for a deterministic tracer: ids are
// sequential and span order is normalized by Snapshot.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := traceID(r); id != "" {
			info, ok := t.Get(id)
			if !ok {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			writeTraceJSON(w, info)
			return
		}
		q := r.URL.Query()
		var minDur time.Duration
		if m := q.Get("min"); m != "" {
			d, err := time.ParseDuration(m)
			if err != nil {
				http.Error(w, `{"error":"bad min duration"}`, http.StatusBadRequest)
				return
			}
			minDur = d
		}
		limit := 100
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, `{"error":"bad limit"}`, http.StatusBadRequest)
				return
			}
			limit = n
		}
		stage, name := q.Get("stage"), q.Get("name")

		recent := t.Recent() // oldest first
		list := TraceList{Enabled: t.Enabled(), Traces: []TraceInfo{}}
		for i := len(recent) - 1; i >= 0; i-- { // newest first
			tr := recent[i]
			if name != "" && tr.Name != name {
				continue
			}
			if minDur > 0 && time.Duration(tr.DurationNS) < minDur {
				continue
			}
			if stage != "" {
				if _, ok := tr.Span(stage); !ok {
					continue
				}
			}
			list.Traces = append(list.Traces, tr)
			if limit > 0 && len(list.Traces) >= limit {
				break
			}
		}
		list.Count = len(list.Traces)
		writeTraceJSON(w, list)
	})
}

// traceID extracts the {id} path value, falling back to suffix parsing
// for muxes without pattern wildcards.
func traceID(r *http.Request) string {
	if id := r.PathValue("id"); id != "" {
		return id
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/traces")
	rest = strings.Trim(rest, "/")
	if rest != "" && !strings.Contains(rest, "/") {
		return rest
	}
	return ""
}

func writeTraceJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
