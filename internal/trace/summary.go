package trace

import (
	"sort"
	"time"
)

// SpanInfo is the immutable snapshot of one span.
type SpanInfo struct {
	Stage string    `json:"stage"`
	Start time.Time `json:"start"`
	// DurationNS is the span length in nanoseconds. JSON uses an integer
	// (not a float of seconds) so snapshots are exact and deterministic.
	DurationNS int64 `json:"duration_ns"`
	Attrs      []KV  `json:"attrs,omitempty"`
}

// End returns the span's end instant.
func (s SpanInfo) End() time.Time { return s.Start.Add(time.Duration(s.DurationNS)) }

// TraceInfo is the immutable snapshot of one trace.
type TraceInfo struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	DurationNS int64      `json:"duration_ns"`
	Finished   bool       `json:"finished"`
	Attrs      []KV       `json:"attrs,omitempty"`
	Spans      []SpanInfo `json:"spans"`
}

// Span returns the first span snapshot with the given stage.
func (t TraceInfo) Span(stage string) (SpanInfo, bool) {
	for _, s := range t.Spans {
		if s.Stage == stage {
			return s, true
		}
	}
	return SpanInfo{}, false
}

// Snapshot copies the trace's current state. Spans are ordered by
// (start, stage, duration, attrs) rather than creation order: concurrent
// stages append in scheduling order, and the sort restores a replayable
// order so simclock-driven runs marshal to identical JSON.
func (tr *Trace) Snapshot() TraceInfo {
	if tr == nil {
		return TraceInfo{}
	}
	tr.mu.Lock()
	info := TraceInfo{
		ID:       tr.id,
		Name:     tr.name,
		Start:    tr.start,
		Finished: tr.finished,
		Attrs:    append([]KV(nil), tr.attrs...),
	}
	end := tr.end
	info.Spans = make([]SpanInfo, 0, len(tr.spans))
	for _, s := range tr.spans {
		sEnd := s.end
		if !s.ended {
			sEnd = s.start // open span: report zero duration so far
		}
		info.Spans = append(info.Spans, SpanInfo{
			Stage:      s.stage,
			Start:      s.start,
			DurationNS: sEnd.Sub(s.start).Nanoseconds(),
			Attrs:      append([]KV(nil), s.attrs...),
		})
	}
	tr.mu.Unlock()
	if !end.IsZero() {
		info.DurationNS = end.Sub(info.Start).Nanoseconds()
	}
	sort.SliceStable(info.Spans, func(i, j int) bool {
		a, b := info.Spans[i], info.Spans[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.DurationNS != b.DurationNS {
			return a.DurationNS < b.DurationNS
		}
		return attrKey(a.Attrs) < attrKey(b.Attrs)
	})
	return info
}

func attrKey(kvs []KV) string {
	k := ""
	for _, kv := range kvs {
		k += kv.Key + "\x00" + kv.Value + "\x00"
	}
	return k
}

// StageStat aggregates every retained span of one stage.
type StageStat struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
	// Latency quantiles in seconds (nearest-rank percentiles).
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	SumSeconds float64 `json:"sum_seconds"`
}

// SlowTrace identifies one of the slowest retained traces.
type SlowTrace struct {
	ID              string  `json:"id"`
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// Summary is the aggregate view of the tracer's ring buffer: per-stage
// latency attribution plus the slowest whole traces. report.Export embeds
// it so an archived run carries its stage-latency profile.
type Summary struct {
	Traces  int         `json:"traces"`
	Spans   int         `json:"spans"`
	Stages  []StageStat `json:"stages"`
	Slowest []SlowTrace `json:"slowest,omitempty"`
}

// Summary computes per-stage p50/p95/max/sum over the retained traces and
// the topK slowest trace ids. Stages are sorted by name; ties in trace
// duration break by id so the result is deterministic.
func (t *Tracer) Summary(topK int) *Summary {
	recent := t.Recent()
	sum := &Summary{Traces: len(recent)}
	byStage := make(map[string][]float64)
	for _, tr := range recent {
		for _, s := range tr.Spans {
			byStage[s.Stage] = append(byStage[s.Stage],
				time.Duration(s.DurationNS).Seconds())
		}
	}
	stages := make([]string, 0, len(byStage))
	for stage := range byStage {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	for _, stage := range stages {
		durs := byStage[stage]
		sort.Float64s(durs)
		st := StageStat{
			Stage:      stage,
			Count:      len(durs),
			P50Seconds: percentile(durs, 0.50),
			P95Seconds: percentile(durs, 0.95),
			MaxSeconds: durs[len(durs)-1],
		}
		for _, d := range durs {
			st.SumSeconds += d
		}
		sum.Spans += len(durs)
		sum.Stages = append(sum.Stages, st)
	}
	if topK > 0 {
		slow := make([]SlowTrace, 0, len(recent))
		for _, tr := range recent {
			slow = append(slow, SlowTrace{
				ID:              tr.ID,
				Name:            tr.Name,
				DurationSeconds: time.Duration(tr.DurationNS).Seconds(),
			})
		}
		sort.Slice(slow, func(i, j int) bool {
			if slow[i].DurationSeconds != slow[j].DurationSeconds {
				return slow[i].DurationSeconds > slow[j].DurationSeconds
			}
			return slow[i].ID < slow[j].ID
		})
		if len(slow) > topK {
			slow = slow[:topK]
		}
		sum.Slowest = slow
	}
	return sum
}

// percentile is the nearest-rank percentile of ascending-sorted durs.
func percentile(durs []float64, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	rank := int(p*float64(len(durs)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(durs) {
		rank = len(durs)
	}
	return durs[rank-1]
}
