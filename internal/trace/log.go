package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel resolves a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("trace: unknown log level %q", s)
	}
}

// Logger is a leveled structured logger emitting one event per line in
// logfmt-style key=value pairs or JSON. It is safe for concurrent use;
// a nil *Logger drops everything.
type Logger struct {
	level atomic.Int32
	json  atomic.Bool

	mu    sync.Mutex
	w     io.Writer
	clock func() time.Time
}

// NewLogger creates a logger writing key=value lines at or above level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w, clock: time.Now}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum emitted severity.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Level returns the minimum emitted severity.
func (l *Logger) Level() Level {
	if l == nil {
		return LevelError
	}
	return Level(l.level.Load())
}

// SetJSON switches between JSON (true) and key=value (false) lines.
func (l *Logger) SetJSON(on bool) {
	if l != nil {
		l.json.Store(on)
	}
}

// SetClock injects a timestamp source (nil restores time.Now). Tests use
// a simclock-driven function so emitted lines are deterministic.
func (l *Logger) SetClock(clock func() time.Time) {
	if l == nil {
		return
	}
	if clock == nil {
		clock = time.Now
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// Enabled reports whether events at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// Debug emits a debug event with alternating key/value pairs.
func (l *Logger) Debug(msg string, kvs ...any) { l.Log(LevelDebug, msg, kvs...) }

// Info emits an info event.
func (l *Logger) Info(msg string, kvs ...any) { l.Log(LevelInfo, msg, kvs...) }

// Warn emits a warning event.
func (l *Logger) Warn(msg string, kvs ...any) { l.Log(LevelWarn, msg, kvs...) }

// Error emits an error event.
func (l *Logger) Error(msg string, kvs ...any) { l.Log(LevelError, msg, kvs...) }

// Log emits one event. kvs alternate key, value; a trailing key without a
// value is paired with "!MISSING". Keys are emitted in argument order.
func (l *Logger) Log(level Level, msg string, kvs ...any) {
	if !l.Enabled(level) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.clock().UTC().Format(time.RFC3339Nano)
	var b strings.Builder
	if l.json.Load() {
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(level.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		for i := 0; i < len(kvs); i += 2 {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(keyAt(kvs, i)))
			b.WriteByte(':')
			b.WriteString(jsonValue(valueAt(kvs, i)))
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(level.String())
		b.WriteString(" msg=")
		b.WriteString(logfmtValue(msg))
		for i := 0; i < len(kvs); i += 2 {
			b.WriteByte(' ')
			b.WriteString(keyAt(kvs, i))
			b.WriteByte('=')
			b.WriteString(logfmtValue(fmt.Sprint(valueAt(kvs, i))))
		}
		b.WriteByte('\n')
	}
	_, _ = io.WriteString(l.w, b.String())
}

func keyAt(kvs []any, i int) string {
	if k, ok := kvs[i].(string); ok {
		return k
	}
	return fmt.Sprint(kvs[i])
}

func valueAt(kvs []any, i int) any {
	if i+1 < len(kvs) {
		return kvs[i+1]
	}
	return "!MISSING"
}

// logfmtValue quotes a value when it contains whitespace, quotes, or
// control characters; bare tokens stay bare for grep-ability.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.IndexFunc(s, func(r rune) bool {
		return r <= ' ' || r == '"' || r == '=' || r == 0x7f
	}) >= 0 {
		return strconv.Quote(s)
	}
	return s
}

// jsonValue renders a structured value: numbers and booleans stay typed,
// everything else is a quoted string.
func jsonValue(v any) string {
	switch x := v.(type) {
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		f := strconv.FormatFloat(x, 'g', -1, 64)
		if f == "+Inf" || f == "-Inf" || f == "NaN" {
			return strconv.Quote(f) // not valid JSON numbers
		}
		return f
	default:
		return strconv.Quote(fmt.Sprint(v))
	}
}
