package trace

import (
	"io"
	"testing"
)

// BenchmarkSpanDisabled measures the per-capture cost of tracing when the
// tracer is off: one atomic load, no allocations. This is the price every
// OnTweet pays in production when -trace-buffer is 0.
func BenchmarkSpanDisabled(b *testing.B) {
	tr := New(Config{Enabled: false})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tr.Start("capture")
		sp := t.StartSpan("feature_extract")
		sp.End()
		t.Finish()
	}
}

// BenchmarkSpanEnabled measures the full start→span→finish path with the
// ring buffer engaged.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(Config{Enabled: true, Buffer: 256})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tr.Start("capture")
		sp := t.StartSpan("feature_extract")
		sp.End()
		t.Finish()
	}
}

// BenchmarkLoggerDiscard measures one logfmt event into io.Discard.
func BenchmarkLoggerDiscard(b *testing.B) {
	l := NewLogger(io.Discard, LevelInfo)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Info("slow span", "trace", "t-000001", "stage", "classify", "seconds", 0.25)
	}
}

// BenchmarkLoggerFiltered measures a suppressed event (below level).
func BenchmarkLoggerFiltered(b *testing.B) {
	l := NewLogger(io.Discard, LevelWarn)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debug("noise", "i", i)
	}
}
