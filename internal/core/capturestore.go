package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// CaptureStore bounds the monitor's capture memory (DESIGN.md §12). It is
// a FIFO ring: Append past the capacity deterministically evicts the
// oldest capture, so a continuous stream holds at most Cap captures no
// matter how long it runs. Capacity zero keeps everything (the batch seed
// behaviour).
//
// The store is not internally synchronized: in the streaming pipeline only
// the feature stage appends, and the reporting paths (Snapshot, Range)
// run at drain quiescence.
type CaptureStore struct {
	capLimit int
	buf      []*Capture
	head     int // index of the oldest capture when the ring is saturated
	size     int
	evicted  uint64

	sizeGauge  *metrics.Gauge
	evictTotal *metrics.Counter
}

// NewCaptureStore creates a store bounded at capLimit captures (0 or
// negative keeps everything). reg receives the store's instrumentation;
// nil binds the process-wide default registry.
func NewCaptureStore(capLimit int, reg *metrics.Registry) *CaptureStore {
	if capLimit < 0 {
		capLimit = 0
	}
	if reg == nil {
		reg = metrics.Default()
	}
	return &CaptureStore{
		capLimit: capLimit,
		sizeGauge: reg.Gauge("ph_capture_store_size",
			"Captures currently retained by the bounded capture store."),
		evictTotal: reg.Counter("ph_capture_store_evicted_total",
			"Captures evicted (oldest-first) from the bounded capture store."),
	}
}

// Append retains c, evicting and returning the oldest capture when the
// store is at capacity (nil otherwise).
func (s *CaptureStore) Append(c *Capture) (evicted *Capture) {
	if s.capLimit <= 0 || s.size < s.capLimit {
		s.buf = append(s.buf, c)
		s.size++
		s.sizeGauge.Set(float64(s.size))
		return nil
	}
	// Saturated ring: overwrite the oldest slot.
	evicted = s.buf[s.head]
	s.buf[s.head] = c
	s.head = (s.head + 1) % s.capLimit
	s.evicted++
	s.evictTotal.Inc()
	return evicted
}

// Len reports the number of retained captures.
func (s *CaptureStore) Len() int { return s.size }

// Cap reports the configured bound (0 = unbounded).
func (s *CaptureStore) Cap() int { return s.capLimit }

// Evicted reports how many captures have been dropped oldest-first.
func (s *CaptureStore) Evicted() uint64 { return s.evicted }

// Snapshot returns the retained captures, oldest first, in a freshly
// allocated slice: callers may reorder or truncate it without corrupting
// the store.
func (s *CaptureStore) Snapshot() []*Capture {
	out := make([]*Capture, 0, s.size)
	s.Range(func(_ int, c *Capture) bool {
		out = append(out, c)
		return true
	})
	return out
}

// Range visits the retained captures oldest-first without allocating,
// stopping early when fn returns false. i is the capture's position in
// retention order (0 = oldest retained).
func (s *CaptureStore) Range(fn func(i int, c *Capture) bool) {
	for i := 0; i < s.size; i++ {
		if !fn(i, s.buf[(s.head+i)%len(s.buf)]) {
			return
		}
	}
}

// captureRecord is the spill-to-disk form of one capture. Pointers are
// flattened to values (with presence flags) so gob never meets a nil
// pointer, and the trace — a live object graph tied to the in-process
// tracer ring — is deliberately dropped: a restored capture re-enters the
// pipeline untraced.
type captureRecord struct {
	Tweet       socialnet.Tweet
	Sender      socialnet.Account
	HasSender   bool
	Receiver    socialnet.Account
	HasReceiver bool
	Groups      []int
	Vector      features.Vector
	Spam        bool
}

// captureSnapshot is the gob envelope WriteSnapshot emits.
type captureSnapshot struct {
	Cap     int
	Evicted uint64
	Records []captureRecord
}

// Snapshot envelope: the gob payload is framed by a magic string, its
// length, and a CRC-32C, so a spill file truncated or bit-flipped at rest
// fails loudly at load time instead of gob silently decoding garbage into
// plausible-looking captures.
const (
	captureSnapshotMagic = "PHCAP001"
	// captureSnapshotMaxLen bounds the declared payload length so a
	// corrupted header cannot drive a giant allocation.
	captureSnapshotMaxLen = 1 << 32
)

var captureCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot spills the retained captures (oldest first) to w as a
// checksummed gob envelope, preserving the store's bound and eviction
// count. Traces are not persisted; the unexported engine-side fields of
// accounts and tweets are outside the capture contract and are likewise
// dropped.
func (s *CaptureStore) WriteSnapshot(w io.Writer) error {
	var payload bytes.Buffer
	if err := s.encodeSnapshot(&payload); err != nil {
		return err
	}
	hdr := make([]byte, 0, len(captureSnapshotMagic)+12)
	hdr = append(hdr, captureSnapshotMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(payload.Len()))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload.Bytes(), captureCRCTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("capture store: write snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("capture store: write snapshot payload: %w", err)
	}
	return nil
}

func (s *CaptureStore) encodeSnapshot(w io.Writer) error {
	snap := captureSnapshot{Cap: s.capLimit, Evicted: s.evicted}
	snap.Records = make([]captureRecord, 0, s.size)
	s.Range(func(_ int, c *Capture) bool {
		rec := captureRecord{
			Groups: c.Groups,
			Vector: c.Vector,
			Spam:   c.Spam,
		}
		if c.Tweet != nil {
			rec.Tweet = *c.Tweet
		}
		if c.Sender != nil {
			rec.Sender = *c.Sender
			rec.HasSender = true
		}
		if c.Receiver != nil {
			rec.Receiver = *c.Receiver
			rec.HasReceiver = true
		}
		snap.Records = append(snap.Records, rec)
		return true
	})
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("capture store: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot replaces the store's contents with a snapshot previously
// written by WriteSnapshot. The envelope checksum is verified before any
// state is touched — a truncated or corrupted spill leaves the store
// unchanged and returns an error. The restored captures are rebuilt
// oldest-first through the same Append path, so a snapshot wider than the
// store's own bound is re-evicted deterministically.
func (s *CaptureStore) ReadSnapshot(r io.Reader) error {
	hdr := make([]byte, len(captureSnapshotMagic)+12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("capture store: read snapshot header: %w", err)
	}
	if string(hdr[:len(captureSnapshotMagic)]) != captureSnapshotMagic {
		return fmt.Errorf("capture store: not a capture snapshot (bad magic)")
	}
	n := binary.LittleEndian.Uint64(hdr[len(captureSnapshotMagic):])
	wantCRC := binary.LittleEndian.Uint32(hdr[len(captureSnapshotMagic)+8:])
	if n > captureSnapshotMaxLen {
		return fmt.Errorf("capture store: snapshot declares %d payload bytes", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("capture store: snapshot truncated: %w", err)
	}
	if got := crc32.Checksum(payload, captureCRCTable); got != wantCRC {
		return fmt.Errorf("capture store: snapshot checksum mismatch (%08x != %08x)", got, wantCRC)
	}
	var snap captureSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return fmt.Errorf("capture store: decode snapshot: %w", err)
	}
	s.buf = nil
	s.head = 0
	s.size = 0
	s.evicted = snap.Evicted
	for i := range snap.Records {
		rec := &snap.Records[i]
		c := &Capture{
			Tweet:  &rec.Tweet,
			Groups: rec.Groups,
			Vector: rec.Vector,
			Spam:   rec.Spam,
		}
		if rec.HasSender {
			c.Sender = &rec.Sender
		}
		if rec.HasReceiver {
			c.Receiver = &rec.Receiver
		}
		c.senderSnap = c.Sender
		c.receiverSnap = c.Receiver
		s.Append(c)
	}
	s.sizeGauge.Set(float64(s.size))
	return nil
}
