package core

import (
	"math/rand"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// driftCapture fabricates a capture whose spam signature lives in the
// mention-time and source features. Regime 0 spammers react in seconds
// from third-party clients; regime 1 spammers (after the drift) slow down
// and switch to mobile clients but flood hashtags instead.
func driftCapture(rng *rand.Rand, spam bool, regime int) (*Capture, bool) {
	var v features.Vector
	v[features.FSenderFriends] = 200 + rng.Float64()*100
	v[features.FSenderFollowers] = 100 + rng.Float64()*100
	v[features.FBehaviorMentionTime] = 1800 + rng.Float64()*3600
	v[features.FContentSource] = float64(socialnet.SourceMobile)
	v[features.FContentHashtags] = float64(rng.Intn(2))
	if spam {
		if regime == 0 {
			v[features.FBehaviorMentionTime] = 20 + rng.Float64()*60
			v[features.FContentSource] = float64(socialnet.SourceThirdParty)
		} else {
			// Drifted: human-like delays, mobile client, hashtag floods.
			v[features.FBehaviorMentionTime] = 1500 + rng.Float64()*3000
			v[features.FContentSource] = float64(socialnet.SourceMobile)
			v[features.FContentHashtags] = 4 + float64(rng.Intn(4))
		}
	}
	return &Capture{Tweet: &socialnet.Tweet{}, Vector: v}, spam
}

func TestOnlineDetectorTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	online, err := NewOnlineDetector(ClassifierRF, 400, 50, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A frozen detector trained on regime 0 only.
	var frozenX [][]float64
	var frozenY []bool

	// Phase 1: regime 0.
	for i := 0; i < 400; i++ {
		spam := rng.Float64() < 0.3
		c, label := driftCapture(rng, spam, 0)
		if err := online.Observe(c, label); err != nil {
			t.Fatal(err)
		}
		vec := make([]float64, len(c.Vector))
		copy(vec, c.Vector[:])
		frozenX = append(frozenX, vec)
		frozenY = append(frozenY, label)
	}
	frozenClf, err := NewClassifier(ClassifierRF, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := frozenClf.Fit(frozenX, frozenY); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the drift. The online detector keeps observing labeled
	// captures; the frozen one does not.
	for i := 0; i < 400; i++ {
		spam := rng.Float64() < 0.3
		c, label := driftCapture(rng, spam, 1)
		if err := online.Observe(c, label); err != nil {
			t.Fatal(err)
		}
	}

	// Evaluate both on fresh regime-1 traffic.
	var onlineCorrect, frozenCorrect, n int
	for i := 0; i < 300; i++ {
		spam := rng.Float64() < 0.3
		c, label := driftCapture(rng, spam, 1)
		if online.Classify(c) == label {
			onlineCorrect++
		}
		if frozenClf.Predict(c.Vector[:]) == label {
			frozenCorrect++
		}
		n++
	}
	onlineAcc := float64(onlineCorrect) / float64(n)
	frozenAcc := float64(frozenCorrect) / float64(n)
	if onlineAcc < 0.85 {
		t.Fatalf("online accuracy after drift = %v", onlineAcc)
	}
	if onlineAcc <= frozenAcc {
		t.Fatalf("online (%v) no better than frozen (%v) after drift",
			onlineAcc, frozenAcc)
	}
	if online.Retrains() < 2 {
		t.Fatalf("online detector retrained only %d times", online.Retrains())
	}
}

func TestOnlineDetectorWindowEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	online, err := NewOnlineDetector(ClassifierDT, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		c, label := driftCapture(rng, i%3 == 0, 0)
		if err := online.Observe(c, label); err != nil {
			t.Fatal(err)
		}
	}
	if online.WindowSize() != 100 {
		t.Fatalf("window holds %d, want 100", online.WindowSize())
	}
}

func TestOnlineDetectorSingleClassWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	online, err := NewOnlineDetector(ClassifierDT, 50, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only negatives: no training happens, Classify stays conservative.
	for i := 0; i < 20; i++ {
		c, _ := driftCapture(rng, false, 0)
		if err := online.Observe(c, false); err != nil {
			t.Fatal(err)
		}
	}
	if online.Retrains() != 0 {
		t.Fatal("trained on a single-class window")
	}
	c, _ := driftCapture(rng, true, 0)
	if online.Classify(c) {
		t.Fatal("untrained detector predicted spam")
	}
}

func TestNewOnlineDetectorValidation(t *testing.T) {
	if _, err := NewOnlineDetector(ClassifierRF, 0, 5, 1); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewOnlineDetector("bogus", 10, 5, 1); err == nil {
		t.Fatal("bogus classifier accepted")
	}
	od, err := NewOnlineDetector(ClassifierRF, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if od.retrainEvery <= 0 {
		t.Fatal("retrainEvery not defaulted")
	}
}
