package core

import (
	"math/rand"
	"sort"
	"strconv"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// Screener finds candidate pseudo-honeypot accounts. socialnet.World
// satisfies it directly through LocalScreener; an API-backed implementation
// screens through /1.1/users/search.
type Screener interface {
	Screen(q socialnet.ScreenQuery, now time.Time) []*socialnet.Account
}

// LocalScreener screens an in-process world.
type LocalScreener struct {
	World *socialnet.World
	Rng   *rand.Rand
}

var _ Screener = (*LocalScreener)(nil)

// Screen implements Screener.
func (s *LocalScreener) Screen(q socialnet.ScreenQuery, now time.Time) []*socialnet.Account {
	return s.World.Screen(q, now, s.Rng)
}

// MonitorConfig parameterizes a pseudo-honeypot monitor.
type MonitorConfig struct {
	// Specs is the deployment plan (selectors and node budgets).
	Specs []SelectorSpec

	// ActiveOnly restricts selection to accounts in Active status
	// (paper §III-D). When few accounts qualify (e.g. the first hours of
	// a run), selection transparently falls back to all accounts so the
	// network never starts empty.
	ActiveOnly bool

	// Tolerance is the numeric sample-value band (0 ⇒ socialnet default).
	Tolerance float64

	// ReuseNodes allows re-selecting accounts used in earlier rotations.
	// The paper migrates to fresh accounts each hour; tests may disable
	// exclusion to keep small worlds from exhausting candidates.
	ReuseNodes bool

	// MaxRatio is the selection-hygiene bound on candidates'
	// friend/follower ratio (skip follow-heavy spam-looking accounts).
	// Zero uses DefaultMaxRatio; negative disables the filter. The
	// filter never applies to ratio-attribute selectors, which sample
	// specific ratios by design.
	MaxRatio float64

	// Seed drives selection sampling.
	Seed int64

	// CaptureCap bounds the capture store: past the cap the oldest capture
	// is evicted deterministically (FIFO). Zero keeps everything — the
	// batch seed behaviour.
	CaptureCap int

	// Metrics receives the monitor's instrumentation (DESIGN.md §9).
	// Nil binds to the process-wide metrics.Default() registry.
	Metrics *metrics.Registry

	// Tracer records per-capture pipeline traces (DESIGN.md §11). Nil
	// binds to the process-wide trace.Default() tracer, which starts
	// disabled — tracing then costs one atomic load per stream hit.
	Tracer *trace.Tracer
}

// GroupStats aggregates what one selector's node group captured.
type GroupStats struct {
	Spec SelectorSpec

	// NodeHours is Σ (selected nodes × rotation hours) — the G·T term of
	// the PGE denominator.
	NodeHours float64

	// Tweets is the number of captured tweets attributed to the group.
	Tweets int

	// Senders is the set of distinct authors of captured tweets.
	Senders map[socialnet.AccountID]struct{}

	// Spams / Spammers are filled in by the detector's attribution pass.
	Spams    int
	Spammers map[socialnet.AccountID]struct{}
}

// Capture is one collected tweet with its extraction context.
type Capture struct {
	Tweet    *socialnet.Tweet
	Sender   *socialnet.Account
	Receiver *socialnet.Account
	// Groups indexes into the monitor's group list: every selector group
	// whose node captured this tweet.
	Groups []int
	// Vector is the 58-feature vector extracted at capture time.
	Vector features.Vector
	// Spam is the detector's verdict, set by the classification pass
	// (not ground truth).
	Spam bool
	// Trace is the capture's pipeline trace, nil when tracing is off.
	// Batch stages (labeling, classification) append spans after the
	// capture itself finished.
	Trace *trace.Trace
	// Source is the id of the ingest source that delivered the tweet
	// ("twitter", "reddit", "replay"); empty on the legacy single-source
	// paths, which predate the ingestion layer.
	Source string

	// senderSnap/receiverSnap are profile copies taken on the engine
	// goroutine at match time. Feature extraction reads them instead of
	// the live accounts, so a deferred (streaming-stage) extraction sees
	// exactly the field values a synchronous batch extraction saw — the
	// engine keeps mutating the live profiles underneath.
	senderSnap   *socialnet.Account
	receiverSnap *socialnet.Account
}

// SenderSnapshot returns the author profile frozen at match time (nil on
// lookup misses). Streaming stages read it where the live Sender pointer
// would race with the engine mutating the account.
func (c *Capture) SenderSnapshot() *socialnet.Account { return c.senderSnap }

// DefaultMaxRatio is the default selection-hygiene bound on candidates'
// friend/follower ratio.
const DefaultMaxRatio = 10

// Monitor implements pseudo-honeypot monitoring: it holds the current node
// set, rotates it to fresh accounts (portability, §III-D), filters the
// tweet stream down to mention interactions crossing the nodes (§III-E),
// and extracts features at capture time.
type Monitor struct {
	cfg      MonitorConfig
	screener Screener
	rng      *rand.Rand

	groups []*GroupStats
	// nodes maps a currently-selected account to the groups it serves.
	nodes map[socialnet.AccountID][]int
	// used records accounts selected in any rotation (exclusion set).
	used map[socialnet.AccountID]struct{}

	extractor *features.Extractor
	store     *CaptureStore

	// scratchGroups is reused across Match calls so the hot stream path
	// allocates nothing on a miss; scratchAttrs is reused across
	// ExtractCapture calls. In streaming mode Match runs on the engine
	// goroutine and ExtractCapture on the feature stage goroutine, so the
	// two scratch slices must never be touched by the other method.
	// scratchMergeAttrs belongs to CompleteCapture, which the sharded
	// coordinator runs on its merge goroutine.
	scratchGroups     []int
	scratchAttrs      []string
	scratchMergeAttrs []string

	rotations int
	// lastRotation is the per-group node count of the most recent Rotate —
	// what the durable rotation record persists so a WAL replay can
	// re-accrue node hours without re-screening a world that is gone.
	lastRotation []int
	ins          *monitorInstruments
	tracer       *trace.Tracer
}

// NewMonitor creates a monitor over the screener.
func NewMonitor(cfg MonitorConfig, screener Screener) *Monitor {
	m := &Monitor{
		cfg:       cfg,
		screener:  screener,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nodes:     make(map[socialnet.AccountID][]int),
		used:      make(map[socialnet.AccountID]struct{}),
		extractor: features.NewExtractor(),
	}
	for _, spec := range cfg.Specs {
		m.groups = append(m.groups, &GroupStats{
			Spec:     spec,
			Senders:  make(map[socialnet.AccountID]struct{}),
			Spammers: make(map[socialnet.AccountID]struct{}),
		})
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	m.store = NewCaptureStore(cfg.CaptureCap, reg)
	m.ins = newMonitorInstruments(reg, m.groups)
	m.tracer = cfg.Tracer
	if m.tracer == nil {
		m.tracer = trace.Default()
	}
	return m
}

// Extractor exposes the monitor's feature extractor (for environment-score
// updates after classification).
func (m *Monitor) Extractor() *features.Extractor { return m.extractor }

// Groups returns the per-selector statistics (shared, live values).
func (m *Monitor) Groups() []*GroupStats { return m.groups }

// Captures returns the retained observations, oldest first, in a freshly
// allocated slice. Callers may reorder or truncate the slice freely; the
// *Capture elements themselves stay shared with the monitor, matching the
// live-trace and verdict-attribution contracts.
func (m *Monitor) Captures() []*Capture { return m.store.Snapshot() }

// Store exposes the bounded capture store (eviction stats, spill
// snapshot/restore).
func (m *Monitor) Store() *CaptureStore { return m.store }

// Rotations returns how many times the node set was (re)selected.
func (m *Monitor) Rotations() int { return m.rotations }

// NodeCount returns the current number of distinct harnessed accounts.
func (m *Monitor) NodeCount() int { return len(m.nodes) }

// CurrentNodes returns a copy of the current node assignment: each
// harnessed account mapped to the indices of the selector groups it serves.
func (m *Monitor) CurrentNodes() map[socialnet.AccountID][]int {
	out := make(map[socialnet.AccountID][]int, len(m.nodes))
	for id, gis := range m.nodes {
		out[id] = append([]int(nil), gis...)
	}
	return out
}

// Rotate drops the previous node set and selects a fresh one (the paper
// rotates hourly). period is the time the new set will be monitored; it
// feeds the node-hours PGE denominator.
func (m *Monitor) Rotate(now time.Time, period time.Duration) {
	start := time.Now()
	tr := m.tracer.Start("rotate")
	sp := tr.StartSpan("rotate")
	m.nodes = make(map[socialnet.AccountID][]int)
	rotCounts := make([]int, len(m.groups))
	maxRatio := m.cfg.MaxRatio
	if maxRatio == 0 {
		maxRatio = DefaultMaxRatio
	}
	for gi, g := range m.groups {
		q := socialnet.ScreenQuery{
			Selector:   g.Spec.Selector,
			Count:      g.Spec.Nodes,
			Tolerance:  m.cfg.Tolerance,
			ActiveOnly: m.cfg.ActiveOnly,
		}
		if maxRatio > 0 && g.Spec.Selector.Attr != socialnet.AttrFriendFollowerRatio {
			q.MaxFriendFollowerRatio = maxRatio
		}
		if !m.cfg.ReuseNodes {
			q.Exclude = m.used
		}
		accounts := m.screener.Screen(q, now)
		if m.cfg.ActiveOnly && len(accounts) < g.Spec.Nodes {
			// Too few active candidates (e.g. cold start): fall back
			// to dormant accounts to fill the budget.
			q.ActiveOnly = false
			accounts = m.screener.Screen(q, now)
		}
		if !m.cfg.ReuseNodes && len(accounts) < g.Spec.Nodes {
			// Exclusion exhausted the candidate pool: allow reuse.
			q.Exclude = nil
			accounts = m.screener.Screen(q, now)
		}
		for _, a := range accounts {
			m.nodes[a.ID] = append(m.nodes[a.ID], gi)
			m.used[a.ID] = struct{}{}
		}
		g.NodeHours += float64(len(accounts)) * period.Hours()
		rotCounts[gi] = len(accounts)
		m.ins.groupNodeHours[gi].Add(float64(len(accounts)) * period.Hours())
		m.ins.updateGroup(gi, g)
	}
	m.lastRotation = rotCounts
	m.rotations++
	m.ins.rotations.Inc()
	m.ins.nodes.Set(float64(len(m.nodes)))
	m.ins.rotationSecs.ObserveDuration(start)
	sp.End()
	if tr != nil {
		tr.SetAttr("rotation", strconv.Itoa(m.rotations))
		tr.SetAttr("nodes", strconv.Itoa(len(m.nodes)))
	}
	tr.Finish()
}

// AccrueHours extends the current node set's monitored time without
// reselecting — the static (non-rotating) deployment mode used by the
// portability ablation.
func (m *Monitor) AccrueHours(period time.Duration) {
	counts := make(map[int]int)
	for _, gis := range m.nodes {
		for _, gi := range gis {
			counts[gi]++
		}
	}
	for gi, n := range counts {
		m.groups[gi].NodeHours += float64(n) * period.Hours()
		m.ins.groupNodeHours[gi].Add(float64(n) * period.Hours())
		m.ins.updateGroup(gi, m.groups[gi])
	}
}

// LastRotationCounts returns the per-group node counts selected by the
// most recent Rotate (nil before the first rotation). The durable store
// persists them so a replayed run re-accrues the same node hours.
func (m *Monitor) LastRotationCounts() []int { return m.lastRotation }

// AccrueGroupNodes credits each group with counts[gi] nodes monitored for
// period — the replay-mode twin of Rotate's node-hours accrual. Replay
// cannot re-screen the original world, so it feeds the recorded rotation
// counts back through this instead. Counts beyond the group list are
// ignored (a recording from a larger deployment plan fails validation
// upstream).
func (m *Monitor) AccrueGroupNodes(counts []int, period time.Duration) {
	for gi, n := range counts {
		if gi >= len(m.groups) || n == 0 {
			continue
		}
		m.groups[gi].NodeHours += float64(n) * period.Hours()
		m.ins.groupNodeHours[gi].Add(float64(n) * period.Hours())
		m.ins.updateGroup(gi, m.groups[gi])
	}
	m.rotations++
	m.ins.rotations.Inc()
}

// OnTweet feeds one stream tweet through the mention filter. lookup
// resolves account profiles (world lookup in-process, REST lookup over the
// API). Tweets are captured when they mention a current node or are
// authored by one (the paper's Categories (1)–(3)).
//
// OnTweet is the synchronous batch path: match, extract, and retain in one
// call. The streaming pipeline calls the same three steps itself — Match
// on the engine goroutine, ExtractCapture + Store().Append on the feature
// stage — so both modes run identical code in identical order.
func (m *Monitor) OnTweet(t *socialnet.Tweet, lookup func(socialnet.AccountID) *socialnet.Account) {
	c := m.Match(t, lookup)
	if c == nil {
		return
	}
	m.ExtractCapture(c)
	m.store.Append(c)
}

// Match is the ingest stage: it runs the mention filter, does the
// per-group attribution bookkeeping, and snapshots the sender/receiver
// profiles for deferred extraction. It returns nil on a miss. Match must
// run on the stream (engine) goroutine — it reads the live node set and
// copies live profiles.
func (m *Monitor) Match(t *socialnet.Tweet, lookup func(socialnet.AccountID) *socialnet.Account) *Capture {
	// The vast majority of stream tweets miss the node set: collect the
	// matched group indices into a reused scratch slice so the miss path
	// allocates nothing.
	var receiver *socialnet.Account
	scratch := m.scratchGroups[:0]
	for _, mention := range t.Mentions {
		if gis, ok := m.nodes[mention]; ok {
			scratch = appendUnique(scratch, gis)
			if receiver == nil {
				receiver = lookup(mention)
			}
		}
	}
	if gis, ok := m.nodes[t.AuthorID]; ok {
		scratch = appendUnique(scratch, gis)
	}
	if len(scratch) == 0 {
		m.scratchGroups = scratch
		return nil
	}
	// Deterministic group order (the former set was map-ordered).
	sort.Ints(scratch)

	// A hit: trace this capture's journey. The miss path above never
	// reaches here, so its zero-allocation discipline is untouched.
	tr := m.tracer.Start("capture")
	sp := tr.StartSpan("capture")

	sender := lookup(t.AuthorID)
	groups := make([]int, len(scratch))
	copy(groups, scratch)
	for _, gi := range groups {
		g := m.groups[gi]
		g.Tweets++
		g.Senders[t.AuthorID] = struct{}{}
		m.ins.groupTweets[gi].Inc()
	}
	m.ins.tweetsCaptured.Inc()
	m.scratchGroups = scratch[:0]

	c := &Capture{
		Tweet:    t,
		Sender:   sender,
		Receiver: receiver,
		Groups:   groups,
		Trace:    tr,
	}
	// Profile snapshots for deferred extraction: copied here, on the
	// engine goroutine, so they freeze the exact values a synchronous
	// extraction would read.
	if sender != nil {
		snap := *sender
		c.senderSnap = &snap
	}
	if receiver != nil {
		snap := *receiver
		c.receiverSnap = &snap
	}
	sp.End()
	if tr != nil {
		tr.SetAttr("tweet", strconv.FormatInt(int64(t.ID), 10))
		tr.SetAttr("sender", strconv.FormatInt(int64(t.AuthorID), 10))
		tr.SetAttr("groups", strconv.Itoa(len(groups)))
	}
	return c
}

// ExtractCapture is the feature stage: it extracts the 58-feature vector
// from the capture's profile snapshots and finishes the capture trace.
// The extractor folds per-account history, so ExtractCapture must see
// captures in stream order — one goroutine, FIFO.
func (m *Monitor) ExtractCapture(c *Capture) {
	attrKeys := m.scratchAttrs[:0]
	for _, gi := range c.Groups {
		attrKeys = append(attrKeys, m.groups[gi].Spec.Selector.Attr.Key())
	}
	c.Vector = m.extractor.Extract(features.Observation{
		Tweet:    c.Tweet,
		Sender:   c.senderSnap,
		Receiver: c.receiverSnap,
		AttrKeys: attrKeys,
		Trace:    c.Trace,
	})
	m.scratchAttrs = attrKeys[:0]
	c.Trace.Finish()
}

// StatelessVector computes the order-independent portion of c's feature
// vector from its frozen profile snapshots. It reads no mutable monitor or
// extractor state, so shard workers call it concurrently and out of stream
// order; CompleteCapture later fills in the stateful remainder serially.
func (m *Monitor) StatelessVector(c *Capture) features.Vector {
	return features.Stateless(features.Observation{
		Tweet:    c.Tweet,
		Sender:   c.senderSnap,
		Receiver: c.receiverSnap,
	})
}

// CompleteCapture finishes a capture whose stateless vector a shard worker
// already computed: it fills the stateful features (repeated-content,
// behaviour, environment score) in stream order and finishes the capture
// trace. Given vec == StatelessVector(c), the resulting c.Vector is
// bit-identical to what ExtractCapture would have produced.
func (m *Monitor) CompleteCapture(c *Capture, vec features.Vector) {
	sp := c.Trace.StartSpan("feature_complete")
	attrKeys := m.scratchMergeAttrs[:0]
	for _, gi := range c.Groups {
		attrKeys = append(attrKeys, m.groups[gi].Spec.Selector.Attr.Key())
	}
	m.extractor.CompleteStateful(features.Observation{
		Tweet:    c.Tweet,
		Sender:   c.senderSnap,
		Receiver: c.receiverSnap,
		AttrKeys: attrKeys,
		Trace:    c.Trace,
	}, &vec)
	c.Vector = vec
	m.scratchMergeAttrs = attrKeys[:0]
	sp.End()
	c.Trace.Finish()
}

// GroupAttrKey exposes group gi's selector attribute key (used by shard
// workers to report per-group work without holding the monitor).
func (m *Monitor) GroupAttrKey(gi int) string {
	return m.groups[gi].Spec.Selector.Attr.Key()
}

// appendUnique appends the group indices from gis not already in dst.
// Group fan-out per tweet is tiny, so the linear scan beats a set.
func appendUnique(dst []int, gis []int) []int {
	for _, gi := range gis {
		dup := false
		for _, have := range dst {
			if have == gi {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, gi)
		}
	}
	return dst
}

// AttributeSpam records detector verdicts into the per-group statistics
// and refreshes the environment scores (P_attr) the extractor uses for
// subsequent captures.
//
// Only spam *received* by a node (a mention capture) is attributed to the
// node's selector group: PGE measures an attribute's power to attract
// spammers, and a harnessed account that itself turns out to be a spammer
// (Category (1)) garners nothing. Category (1) spam still appears in the
// capture list and the run totals.
func (m *Monitor) AttributeSpam(verdicts []bool) {
	tr := m.tracer.Start("pge_attribute")
	sp := tr.StartSpan("pge_attribute")
	defer func() {
		sp.End()
		if tr != nil {
			tr.SetAttr("verdicts", strconv.Itoa(len(verdicts)))
		}
		tr.Finish()
	}()
	m.store.Range(func(i int, c *Capture) bool {
		if i >= len(verdicts) {
			return false
		}
		c.Spam = verdicts[i]
		if !c.Spam || c.Receiver == nil {
			return true
		}
		for _, gi := range c.Groups {
			g := m.groups[gi]
			g.Spams++
			g.Spammers[c.Tweet.AuthorID] = struct{}{}
		}
		return true
	})
	for gi, g := range m.groups {
		m.ins.updateGroup(gi, g)
		if g.Tweets == 0 {
			continue
		}
		p := float64(g.Spams) / float64(g.Tweets)
		m.extractor.UpdateEnvScore(g.Spec.Selector.Attr.Key(), p)
	}
}
