package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// BenchmarkDetectorClassify times batch classification of a captured
// corpus at the default worker count and reports the speedup over a
// single-worker pass (driven through the PH_WORKERS knob) as a custom
// metric.
func BenchmarkDetectorClassify(b *testing.B) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(120),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(8)

	captures := m.Captures()
	tweets := make([]*socialnet.Tweet, len(captures))
	for i, c := range captures {
		tweets[i] = c.Tweet
	}
	labels := label.NewPipeline(label.DefaultConfig()).
		Run(label.NewCorpus(tweets, w.Account), label.NewNoisyOracle(w, 0.02, 3))
	clf, err := NewClassifier(ClassifierRF, 1)
	if err != nil {
		b.Fatal(err)
	}
	det := NewDetector(clf)
	if err := det.Train(captures, labels); err != nil {
		b.Fatal(err)
	}

	classifyOnce := func(workers string) time.Duration {
		b.Setenv(parallel.EnvWorkers, workers)
		start := time.Now()
		det.Classify(captures)
		return time.Since(start)
	}
	classifyOnce("1") // warm caches
	seq := classifyOnce("1")
	b.Setenv(parallel.EnvWorkers, "")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Classify(captures)
	}
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-vs-1worker")
	}
}

// benchStreamMonitor builds a monitor with a realistic node set and a
// tweet mix of hits and misses for the OnTweet benchmarks.
func benchStreamMonitor(b *testing.B, tracer *trace.Tracer) (*Monitor, []*socialnet.Tweet, func(socialnet.AccountID) *socialnet.Account) {
	b.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs:  RandomSpec(120),
		Seed:   1,
		Tracer: tracer,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	var tweets []*socialnet.Tweet
	cancel := e.Subscribe(func(t *socialnet.Tweet) { tweets = append(tweets, t) })
	e.OnHourStart(func(hour int, now time.Time) { m.Rotate(now, time.Hour) })
	e.RunHours(2)
	cancel()
	if len(tweets) == 0 {
		b.Fatal("no tweets generated")
	}
	return m, tweets, w.Account
}

// BenchmarkOnTweetUntraced is the baseline stream path with the default
// disabled tracer: misses allocate nothing, tracing costs one atomic load.
func BenchmarkOnTweetUntraced(b *testing.B) {
	m, tweets, lookup := benchStreamMonitor(b, trace.New(trace.Config{Enabled: false}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OnTweet(tweets[i%len(tweets)], lookup)
	}
}

// BenchmarkOnTweetTraced is the same stream replay with tracing enabled:
// every hit additionally records a capture trace with capture and
// feature_extract spans into the ring buffer. Compare against
// BenchmarkOnTweetUntraced for the tracing overhead (DESIGN.md §11).
func BenchmarkOnTweetTraced(b *testing.B) {
	m, tweets, lookup := benchStreamMonitor(b, trace.New(trace.Config{Enabled: true}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OnTweet(tweets[i%len(tweets)], lookup)
	}
}
