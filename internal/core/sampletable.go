// Package core implements the paper's primary contribution: the
// pseudo-honeypot system. It provides the attribute sample-value tables
// (Table II), attribute-based node selection over existing accounts,
// hourly-rotating monitoring of the mention stream crossing those nodes
// (§III), the PGE efficiency metric and top-K attribute refinement (§V-E),
// and the machine-learning detector wiring (§IV).
package core

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// SampleValues reproduces the paper's Table II: for each profile-based
// attribute, the ten sample values whose surrounding accounts serve as
// pseudo-honeypot nodes.
var SampleValues = map[socialnet.Attribute][]float64{
	socialnet.AttrFriends: {
		10, 50, 100, 200, 300, 500, 1000, 3000, 5000, 10000,
	},
	socialnet.AttrFollowers: {
		10, 50, 100, 200, 300, 500, 1000, 3000, 5000, 10000,
	},
	socialnet.AttrTotalFriendsFollowers: {
		20, 100, 200, 500, 1000, 2000, 3000, 5000, 10000, 30000,
	},
	socialnet.AttrFriendFollowerRatio: {
		1.0 / 10, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4, 6, 8, 10,
	},
	socialnet.AttrAgeDays: {
		10, 50, 100, 300, 500, 1000, 1500, 2000, 2500, 3000,
	},
	socialnet.AttrLists: {
		10, 20, 30, 40, 50, 70, 100, 200, 300, 500,
	},
	socialnet.AttrFavourites: {
		10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 200000,
	},
	socialnet.AttrStatuses: {
		10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 200000,
	},
	socialnet.AttrListsPerDay: {
		1.0 / 100, 1.0 / 50, 1.0 / 20, 1.0 / 10, 1.0 / 8, 1.0 / 6,
		1.0 / 4, 1.0 / 2, 1, 2,
	},
	socialnet.AttrFavouritesPerDay: {
		1.0 / 50, 1.0 / 10, 1.0 / 5, 1.0 / 2, 1, 2, 3, 5, 10, 50,
	},
	socialnet.AttrStatusesPerDay: {
		1.0 / 50, 1.0 / 10, 1.0 / 5, 1.0 / 2, 1, 2, 3, 4, 10, 50,
	},
}

// SelectorSpec is one selection criterion with its pseudo-honeypot node
// budget.
type SelectorSpec struct {
	Selector socialnet.Selector
	// Nodes is the number of accounts to harness for this selector.
	Nodes int
}

// StandardSpecs builds the paper's 2,400-node deployment plan scaled by
// nodesPerValue (the paper uses 10): every Table II sample value gets
// nodesPerValue nodes; every hashtag category and trend state gets
// 10×nodesPerValue nodes (10 top hashtags / topics × nodesPerValue
// accounts each).
func StandardSpecs(nodesPerValue int) []SelectorSpec {
	if nodesPerValue <= 0 {
		nodesPerValue = 10
	}
	var specs []SelectorSpec
	for _, attr := range socialnet.ProfileAttributes {
		for _, v := range SampleValues[attr] {
			specs = append(specs, SelectorSpec{
				Selector: socialnet.Selector{Attr: attr, Value: v},
				Nodes:    nodesPerValue,
			})
		}
	}
	for _, cat := range socialnet.HashtagCategories {
		specs = append(specs, SelectorSpec{
			Selector: socialnet.Selector{Attr: socialnet.AttrHashtag, Category: cat},
			Nodes:    10 * nodesPerValue,
		})
	}
	specs = append(specs, SelectorSpec{
		Selector: socialnet.Selector{Attr: socialnet.AttrHashtag, Category: socialnet.HashtagNone},
		Nodes:    10 * nodesPerValue,
	})
	for _, state := range socialnet.TrendStates {
		specs = append(specs, SelectorSpec{
			Selector: socialnet.Selector{Attr: socialnet.AttrTrend, Trend: state},
			Nodes:    10 * nodesPerValue,
		})
	}
	return specs
}

// TotalNodes sums the node budget of a deployment plan.
func TotalNodes(specs []SelectorSpec) int {
	total := 0
	for _, s := range specs {
		total += s.Nodes
	}
	return total
}

// RandomSpec is the paper's "non pseudo-honeypot" baseline: n uniformly
// random accounts.
func RandomSpec(n int) []SelectorSpec {
	return []SelectorSpec{{
		Selector: socialnet.Selector{Attr: socialnet.AttrRandom},
		Nodes:    n,
	}}
}
