package core

import (
	"errors"
	"fmt"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
)

// OnlineDetector implements the paper's §IV-C direction on the Twitter
// spammer-drift problem: spammers' tastes and signatures change over time,
// so the detector retrains periodically on a sliding window of recent
// labeled captures instead of freezing on the initial ground truth. The
// pseudo-honeypot keeps supplying fresh labeled data (new suspensions,
// cluster propagation), so the window stays current by construction.
type OnlineDetector struct {
	name         ClassifierName
	seed         int64
	window       int
	retrainEvery int
	// bins is the histogram split-finding bin count used for every
	// refit; <= 1 is the exact scan. Retraining loops default to
	// DefaultRetrainBins — the model is refit continuously, so the
	// exact-scan guarantee the paper-config single fit needs buys
	// nothing here and the binned candidate set trains much faster.
	bins int

	x [][]float64
	y []bool

	clf       ml.Classifier
	sinceFit  int
	retrains  int
	everTrain bool
}

// NewOnlineDetector creates a drift-aware detector of the named family.
// window bounds the retained labeled captures (older ones are evicted);
// retrainEvery is the number of new observations between refits. Refits
// use histogram-binned split finding (DefaultRetrainBins) by default;
// SetBins(1) restores the exact scan.
func NewOnlineDetector(name ClassifierName, window, retrainEvery int, seed int64) (*OnlineDetector, error) {
	if window <= 0 {
		return nil, errors.New("core: window must be positive")
	}
	if retrainEvery <= 0 {
		retrainEvery = window / 4
		if retrainEvery == 0 {
			retrainEvery = 1
		}
	}
	if _, err := NewClassifier(name, seed); err != nil {
		return nil, err
	}
	return &OnlineDetector{
		name:         name,
		seed:         seed,
		window:       window,
		retrainEvery: retrainEvery,
		bins:         DefaultRetrainBins,
	}, nil
}

// SetBins overrides the histogram bin count used for refits; bins <= 1
// selects the exact split scan. Call before the first Observe — and use
// the same value across a crash-recovery pair, since the recovery refit
// must rebuild the same model family configuration.
func (o *OnlineDetector) SetBins(bins int) { o.bins = bins }

// Observe adds one labeled capture to the sliding window, retraining when
// due. Labels come from whatever ground-truth stream is available —
// pipeline output, fresh suspensions, or manual review.
func (o *OnlineDetector) Observe(c *Capture, spam bool) error {
	vec := make([]float64, len(c.Vector))
	copy(vec, c.Vector[:])
	o.x = append(o.x, vec)
	o.y = append(o.y, spam)
	if len(o.x) > o.window {
		drop := len(o.x) - o.window
		o.x = o.x[drop:]
		o.y = o.y[drop:]
	}
	o.sinceFit++
	if !o.everTrain || o.sinceFit >= o.retrainEvery {
		if err := o.retrain(); err != nil {
			return err
		}
	}
	return nil
}

// retrain refits the classifier on the current window. Training waits
// until the window holds both classes.
func (o *OnlineDetector) retrain() error {
	pos := 0
	for _, v := range o.y {
		if v {
			pos++
		}
	}
	if pos == 0 || pos == len(o.y) {
		return nil // single-class window: keep the previous model
	}
	clf, err := newClassifierBins(o.name, o.seed+int64(o.retrains), o.bins)
	if err != nil {
		return err
	}
	if err := clf.Fit(o.x, o.y); err != nil {
		return fmt.Errorf("online retrain: %w", err)
	}
	o.clf = clf
	o.everTrain = true
	o.sinceFit = 0
	o.retrains++
	return nil
}

// Classify predicts one capture with the current model. Before the first
// successful training it conservatively returns false.
func (o *OnlineDetector) Classify(c *Capture) bool {
	if o.clf == nil {
		return false
	}
	return o.clf.Predict(c.Vector[:])
}

// Retrains reports how many times the model has been refit.
func (o *OnlineDetector) Retrains() int { return o.retrains }

// WindowSize reports the number of labeled captures currently retained.
func (o *OnlineDetector) WindowSize() int { return len(o.x) }
