package core

import (
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
)

// Metric names follow the scheme documented in DESIGN.md §9:
// ph_<component>_<name>_<unit|total>, with per-group series labeled by the
// selector's display string (Selector.String()).

// monitorInstruments is the monitor's view of the metrics registry. The
// per-group children are resolved once at construction so the stream hot
// path pays one atomic add per capture, never a label lookup.
type monitorInstruments struct {
	tweetsCaptured *metrics.Counter
	rotations      *metrics.Counter
	rotationSecs   *metrics.Histogram
	nodes          *metrics.Gauge

	groupTweets    []*metrics.Counter
	groupNodeHours []*metrics.Counter
	groupSpams     []*metrics.Gauge
	groupSpammers  []*metrics.Gauge
	groupPGE       []*metrics.Gauge
}

func newMonitorInstruments(r *metrics.Registry, groups []*GroupStats) *monitorInstruments {
	ins := &monitorInstruments{
		tweetsCaptured: r.Counter("ph_monitor_tweets_captured_total",
			"Tweets captured by the mention filter across all selector groups."),
		rotations: r.Counter("ph_monitor_rotations_total",
			"Node-set rotations performed."),
		rotationSecs: r.Histogram("ph_monitor_rotation_seconds",
			"Wall-clock latency of one node-set rotation (screening included).", nil),
		nodes: r.Gauge("ph_monitor_nodes",
			"Currently harnessed pseudo-honeypot accounts."),
	}
	tweets := r.CounterVec("ph_monitor_group_tweets_total",
		"Tweets attributed to a selector group.", "selector")
	hours := r.CounterVec("ph_monitor_group_node_hours_total",
		"Accumulated node-hours (the G·T term of the PGE denominator).", "selector")
	spams := r.GaugeVec("ph_monitor_group_spams",
		"Spam tweets attributed to a selector group by the detector.", "selector")
	spammers := r.GaugeVec("ph_monitor_group_spammers",
		"Distinct spammers garnered by a selector group (the N term of PGE).", "selector")
	pge := r.GaugeVec("ph_monitor_group_pge",
		"Live garner efficiency PGE = N/(G·T), spammers per node-hour (paper §V-E).", "selector")
	for _, g := range groups {
		sel := g.Spec.Selector.String()
		ins.groupTweets = append(ins.groupTweets, tweets.With(sel))
		ins.groupNodeHours = append(ins.groupNodeHours, hours.With(sel))
		ins.groupSpams = append(ins.groupSpams, spams.With(sel))
		ins.groupSpammers = append(ins.groupSpammers, spammers.With(sel))
		ins.groupPGE = append(ins.groupPGE, pge.With(sel))
	}
	return ins
}

// updateGroup refreshes the attribution gauges from the group's live
// statistics, keeping the exported PGE exactly what ComputePGE reports.
func (ins *monitorInstruments) updateGroup(gi int, g *GroupStats) {
	ins.groupSpams[gi].Set(float64(g.Spams))
	ins.groupSpammers[gi].Set(float64(len(g.Spammers)))
	pge := 0.0
	if g.NodeHours > 0 {
		pge = float64(len(g.Spammers)) / g.NodeHours
	}
	ins.groupPGE[gi].Set(pge)
}

// detectorInstruments is the detector's view of the metrics registry.
type detectorInstruments struct {
	trainSecs       *metrics.Histogram
	classifySecs    *metrics.Histogram
	classifications *metrics.Counter
	spams           *metrics.Counter
	spamRatio       *metrics.Gauge
}

func newDetectorInstruments(r *metrics.Registry) *detectorInstruments {
	return &detectorInstruments{
		trainSecs: r.Histogram("ph_detector_train_seconds",
			"Wall-clock latency of one detector training pass.", nil),
		classifySecs: r.Histogram("ph_detector_classify_seconds",
			"Wall-clock latency of one batch classification pass.", nil),
		classifications: r.Counter("ph_detector_classifications_total",
			"Captures classified by the detector."),
		spams: r.Counter("ph_detector_spam_total",
			"Captures the detector judged spam."),
		spamRatio: r.Gauge("ph_detector_spam_ratio",
			"Spam fraction of the most recent classification batch."),
	}
}
