package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// FuzzCaptureStoreSnapshotRoundTrip drives random store shapes (capacity,
// stream length, nil senders/receivers, random field values) through
// WriteSnapshot/ReadSnapshot and requires the retained window to survive
// exactly — plus, on a second leg, feeds the raw fuzz bytes straight into
// ReadSnapshot to shake out decode panics.
func FuzzCaptureStoreSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(9), []byte{})
	f.Add(int64(7), uint8(0), uint8(33), []byte("junk"))
	f.Add(int64(42), uint8(16), uint8(16), []byte{0x03, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, seed int64, capLimit, n uint8, raw []byte) {
		// Leg 1: adversarial decode of arbitrary bytes must error or
		// succeed, never panic.
		junk := NewCaptureStore(int(capLimit), metrics.NewRegistry())
		_ = junk.ReadSnapshot(bytes.NewReader(raw))

		// Leg 2: structured round-trip.
		rng := rand.New(rand.NewSource(seed))
		src := NewCaptureStore(int(capLimit), metrics.NewRegistry())
		for i := 0; i < int(n); i++ {
			var vec features.Vector
			for j := range vec {
				vec[j] = rng.NormFloat64()
			}
			c := &Capture{
				Tweet: &socialnet.Tweet{
					ID:        socialnet.TweetID(rng.Int63()),
					AuthorID:  socialnet.AccountID(rng.Int63()),
					CreatedAt: time.Unix(rng.Int63n(1 << 32), 0).UTC(),
					Text:      string(rune('a' + rng.Intn(26))),
				},
				Groups: []int{rng.Intn(8)},
				Vector: vec,
				Spam:   rng.Intn(2) == 0,
			}
			if rng.Intn(3) > 0 {
				c.Sender = &socialnet.Account{ID: c.Tweet.AuthorID, ScreenName: "s"}
			}
			if rng.Intn(3) == 0 {
				c.Receiver = &socialnet.Account{ID: 7}
			}
			src.Append(c)
		}
		var buf bytes.Buffer
		if err := src.WriteSnapshot(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		dst := NewCaptureStore(int(capLimit), metrics.NewRegistry())
		if err := dst.ReadSnapshot(&buf); err != nil {
			t.Fatalf("read back own snapshot: %v", err)
		}
		if dst.Len() != src.Len() || dst.Evicted() != src.Evicted() {
			t.Fatalf("len/evicted %d/%d, want %d/%d",
				dst.Len(), dst.Evicted(), src.Len(), src.Evicted())
		}
		want, got := src.Snapshot(), dst.Snapshot()
		for i := range want {
			if got[i].Tweet.ID != want[i].Tweet.ID ||
				got[i].Vector != want[i].Vector ||
				got[i].Spam != want[i].Spam {
				t.Fatalf("capture %d mismatch after round-trip", i)
			}
			if (got[i].Sender == nil) != (want[i].Sender == nil) ||
				(got[i].Receiver == nil) != (want[i].Receiver == nil) {
				t.Fatalf("capture %d pointer presence mismatch", i)
			}
		}
	})
}
