package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func testWorld(t *testing.T) *socialnet.World {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestStandardSpecsMatchPaperBudget(t *testing.T) {
	specs := StandardSpecs(10)
	if got := TotalNodes(specs); got != 2400 {
		t.Fatalf("total nodes = %d, want the paper's 2400", got)
	}
	profile, hashtag, trend := 0, 0, 0
	for _, s := range specs {
		switch s.Selector.Attr {
		case socialnet.AttrHashtag:
			hashtag += s.Nodes
		case socialnet.AttrTrend:
			trend += s.Nodes
		default:
			profile += s.Nodes
		}
	}
	if profile != 1100 || hashtag != 900 || trend != 400 {
		t.Fatalf("budget split = %d/%d/%d, want 1100/900/400", profile, hashtag, trend)
	}
}

func TestStandardSpecsScaleDown(t *testing.T) {
	specs := StandardSpecs(2)
	if got := TotalNodes(specs); got != 480 {
		t.Fatalf("scaled total = %d, want 480", got)
	}
	if got := TotalNodes(StandardSpecs(0)); got != 2400 {
		t.Fatalf("default scale total = %d, want 2400", got)
	}
}

func TestSampleValuesMatchTableII(t *testing.T) {
	if len(SampleValues) != 11 {
		t.Fatalf("%d profile attributes, want 11", len(SampleValues))
	}
	for attr, vals := range SampleValues {
		if len(vals) != 10 {
			t.Fatalf("%v has %d sample values, want 10", attr, len(vals))
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				t.Fatalf("%v sample values not increasing: %v", attr, vals)
			}
		}
	}
	// Spot-check the distinctive values of Table II.
	if SampleValues[socialnet.AttrTotalFriendsFollowers][9] != 30000 {
		t.Fatal("total friends+followers max should be 30k")
	}
	if SampleValues[socialnet.AttrListsPerDay][8] != 1 {
		t.Fatal("lists/day ninth value should be 1")
	}
	if SampleValues[socialnet.AttrFriendFollowerRatio][0] != 0.1 {
		t.Fatal("ratio first value should be 1/10")
	}
}

func TestRandomSpec(t *testing.T) {
	specs := RandomSpec(100)
	if len(specs) != 1 || specs[0].Nodes != 100 ||
		specs[0].Selector.Attr != socialnet.AttrRandom {
		t.Fatalf("RandomSpec = %+v", specs)
	}
}

func TestMonitorRotateSelectsBudget(t *testing.T) {
	w := testWorld(t)
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(50),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	if m.NodeCount() != 50 {
		t.Fatalf("selected %d nodes, want 50", m.NodeCount())
	}
	if m.Rotations() != 1 {
		t.Fatalf("rotations = %d", m.Rotations())
	}
	if got := m.Groups()[0].NodeHours; got != 50 {
		t.Fatalf("node-hours = %v, want 50", got)
	}
}

func TestMonitorRotationExcludesPriorNodes(t *testing.T) {
	w := testWorld(t)
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(30),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	first := make(map[socialnet.AccountID]struct{})
	for id := range m.nodes {
		first[id] = struct{}{}
	}
	m.Rotate(time.Now().Add(time.Hour), time.Hour)
	for id := range m.nodes {
		if _, dup := first[id]; dup {
			t.Fatalf("node %d reselected in consecutive rotation", id)
		}
	}
}

func TestMonitorRotationFallsBackWhenExhausted(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 120
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(100),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	for i := 0; i < 5; i++ {
		m.Rotate(time.Now(), time.Hour)
		if m.NodeCount() < 90 {
			t.Fatalf("rotation %d selected only %d nodes", i, m.NodeCount())
		}
	}
}

func TestMonitorCapturesMentionTraffic(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs: StandardSpecs(1),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(4)

	if len(m.Captures()) == 0 {
		t.Fatal("no captures after 4 hours")
	}
	for _, c := range m.Captures() {
		if len(c.Groups) == 0 {
			t.Fatal("capture with no groups")
		}
		if c.Sender == nil {
			t.Fatal("capture without sender profile")
		}
	}
	// Tweets counted per group must sum to at least the capture count
	// (captures may belong to multiple groups).
	groupTweets := 0
	for _, g := range m.Groups() {
		groupTweets += g.Tweets
	}
	if groupTweets < len(m.Captures()) {
		t.Fatalf("group tweets %d < captures %d", groupTweets, len(m.Captures()))
	}
}

func TestMonitorCapturesOnlyNodeTraffic(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(40),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})

	nodesByHour := make(map[socialnet.AccountID]struct{})
	e.OnHourStart(func(hour int, now time.Time) {
		m.Rotate(now, time.Hour)
		for id := range m.nodes {
			nodesByHour[id] = struct{}{}
		}
	})
	e.Subscribe(func(tw *socialnet.Tweet) { m.OnTweet(tw, w.Account) })
	e.RunHours(3)

	for _, c := range m.Captures() {
		ok := false
		if _, isNode := nodesByHour[c.Tweet.AuthorID]; isNode {
			ok = true
		}
		for _, mention := range c.Tweet.Mentions {
			if _, isNode := nodesByHour[mention]; isNode {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("capture %d unrelated to any node", c.Tweet.ID)
		}
	}
}

func TestEndToEndDetectorPipeline(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(120),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(8)

	captures := m.Captures()
	if len(captures) < 100 {
		t.Fatalf("only %d captures", len(captures))
	}

	// Label the corpus.
	tweets := make([]*socialnet.Tweet, len(captures))
	for i, c := range captures {
		tweets[i] = c.Tweet
	}
	corpus := label.NewCorpus(tweets, w.Account)
	pipeline := label.NewPipeline(label.DefaultConfig())
	labels := pipeline.Run(corpus, label.NewNoisyOracle(w, 0.02, 3))

	// Train RF and classify.
	clf, err := NewClassifier(ClassifierRF, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(clf)
	if err := det.Train(captures, labels); err != nil {
		t.Fatal(err)
	}
	verdicts := det.Classify(captures)
	m.AttributeSpam(verdicts)

	// The detector should agree with ground truth far better than chance.
	correct := 0
	for i, c := range captures {
		if verdicts[i] == c.Tweet.Spam {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(captures)); acc < 0.9 {
		t.Fatalf("detector train-set agreement with ground truth = %v", acc)
	}

	// Attribution should fill group spam counters.
	spams := 0
	for _, g := range m.Groups() {
		spams += g.Spams
	}
	if spams == 0 {
		t.Fatal("no spam attributed to groups")
	}
}

func TestNewClassifierUnknown(t *testing.T) {
	if _, err := NewClassifier("bogus", 1); err == nil {
		t.Fatal("unknown classifier accepted")
	}
	for _, name := range ClassifierNames {
		if _, err := NewClassifier(name, 1); err != nil {
			t.Fatalf("NewClassifier(%s): %v", name, err)
		}
	}
}

func TestBuildDatasetNilLabels(t *testing.T) {
	if _, err := BuildDataset(nil, nil); err == nil {
		t.Fatal("nil labels accepted")
	}
}

func TestDetectorTrainEmptyCaptures(t *testing.T) {
	clf, _ := NewClassifier(ClassifierDT, 1)
	det := NewDetector(clf)
	labels := &label.Result{
		SpamTweets: map[socialnet.TweetID]label.Method{},
	}
	if err := det.Train(nil, labels); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestComputePGEOrdersDescending(t *testing.T) {
	groups := []*GroupStats{
		{
			Spec:      SelectorSpec{Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 10}},
			NodeHours: 100,
			Spammers:  set(1, 2),
		},
		{
			Spec:      SelectorSpec{Selector: socialnet.Selector{Attr: socialnet.AttrLists, Value: 500}},
			NodeHours: 100,
			Spammers:  set(1, 2, 3, 4, 5, 6),
		},
		{
			Spec:      SelectorSpec{Selector: socialnet.Selector{Attr: socialnet.AttrRandom}},
			NodeHours: 0,
			Spammers:  set(),
		},
	}
	rows := ComputePGE(groups)
	if rows[0].Selector.Attr != socialnet.AttrLists {
		t.Fatalf("top PGE selector = %v", rows[0].Selector)
	}
	if rows[0].PGE != 0.06 {
		t.Fatalf("top PGE = %v, want 0.06", rows[0].PGE)
	}
	if rows[2].PGE != 0 {
		t.Fatal("zero node-hours should give zero PGE")
	}
}

func TestTopSelectorsAndAdvancedSpecs(t *testing.T) {
	rows := []PGERow{
		{Selector: socialnet.Selector{Attr: socialnet.AttrListsPerDay, Value: 1}, PGE: 3},
		{Selector: socialnet.Selector{Attr: socialnet.AttrFollowers, Value: 10000}, PGE: 2},
		{Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 10}, PGE: 1},
	}
	top := TopSelectors(rows, 2)
	if len(top) != 2 || top[0].Attr != socialnet.AttrListsPerDay {
		t.Fatalf("TopSelectors = %v", top)
	}
	specs := AdvancedSpecs(rows, 10, 10)
	if len(specs) != 3 {
		t.Fatalf("AdvancedSpecs truncation: %d", len(specs))
	}
	if TotalNodes(specs) != 30 {
		t.Fatalf("advanced nodes = %d", TotalNodes(specs))
	}
}

func TestSummarizeByAttributePoolsSampleValues(t *testing.T) {
	groups := []*GroupStats{
		{
			Spec:   SelectorSpec{Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 10}},
			Tweets: 10, Spams: 2,
			Spammers: set(1, 2),
		},
		{
			Spec:   SelectorSpec{Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 100}},
			Tweets: 20, Spams: 3,
			Spammers: set(2, 3),
		},
		{
			Spec:   SelectorSpec{Selector: socialnet.Selector{Attr: socialnet.AttrHashtag, Category: socialnet.HashtagSocial}},
			Tweets: 5, Spams: 5,
			Spammers: set(9),
		},
	}
	sums := SummarizeByAttribute(groups)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	// Friends pools both sample values, spammers deduplicated.
	var friends *AttrSummary
	for i := range sums {
		if sums[i].Attr == socialnet.AttrFriends {
			friends = &sums[i]
		}
	}
	if friends == nil || friends.Tweets != 30 || friends.Spams != 5 || friends.Spammers != 3 {
		t.Fatalf("friends summary = %+v", friends)
	}
	// Sorted by spammers descending.
	if sums[0].Spammers < sums[1].Spammers {
		t.Fatal("summaries not sorted by spammers")
	}
}

func TestAttributeSpamUpdatesEnvScores(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{Specs: RandomSpec(80), Seed: 1},
		&LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(3)
	if len(m.Captures()) == 0 {
		t.Fatal("no captures")
	}
	// Attribute ground truth as verdicts.
	verdicts := make([]bool, len(m.Captures()))
	for i, c := range m.Captures() {
		verdicts[i] = c.Tweet.Spam
	}
	m.AttributeSpam(verdicts)
	g := m.Groups()[0]
	if g.Tweets == 0 {
		t.Fatal("group captured nothing")
	}
	wantP := float64(g.Spams) / float64(g.Tweets)
	got := m.Extractor().EnvScore([]string{g.Spec.Selector.Attr.Key()})
	if got != wantP {
		t.Fatalf("env score = %v, want %v", got, wantP)
	}
}

func set(ids ...socialnet.AccountID) map[socialnet.AccountID]struct{} {
	s := make(map[socialnet.AccountID]struct{}, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

func TestAccrueHoursExtendsNodeHours(t *testing.T) {
	w := testWorld(t)
	m := NewMonitor(MonitorConfig{Specs: RandomSpec(20), Seed: 1},
		&LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	before := m.Groups()[0].NodeHours
	m.AccrueHours(2 * time.Hour)
	after := m.Groups()[0].NodeHours
	if after != before*3 {
		t.Fatalf("node-hours %v -> %v, want tripled", before, after)
	}
	if m.Rotations() != 1 {
		t.Fatal("AccrueHours must not count as a rotation")
	}
}
