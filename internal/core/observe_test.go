package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TestMetricsReconcileWithGroupStats runs a small end-to-end monitor +
// detector pass against a private registry and asserts every emitted
// metric value matches the numbers the existing code paths compute
// (GroupStats, ComputePGE, verdict counts) exactly.
func TestMetricsReconcileWithGroupStats(t *testing.T) {
	reg := metrics.NewRegistry()
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs:   StandardSpecs(1),
		Seed:    1,
		Metrics: reg,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(5)

	captures := m.Captures()
	if len(captures) == 0 {
		t.Fatal("no captures after 5 hours")
	}

	tweets := make([]*socialnet.Tweet, len(captures))
	for i, c := range captures {
		tweets[i] = c.Tweet
	}
	labels := label.NewPipeline(label.DefaultConfig()).
		Run(label.NewCorpus(tweets, w.Account), label.NewNoisyOracle(w, 0.02, 3))
	clf, err := NewClassifier(ClassifierDT, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(clf)
	det.SetMetrics(reg)
	if err := det.Train(captures, labels); err != nil {
		t.Fatal(err)
	}
	verdicts := det.Classify(captures)
	m.AttributeSpam(verdicts)

	// Monitor totals.
	if got := reg.Counter("ph_monitor_tweets_captured_total", "").Value(); got != float64(len(captures)) {
		t.Fatalf("tweets_captured = %v, want %d", got, len(captures))
	}
	if got := reg.Counter("ph_monitor_rotations_total", "").Value(); got != float64(m.Rotations()) {
		t.Fatalf("rotations = %v, want %d", got, m.Rotations())
	}
	if got := reg.Gauge("ph_monitor_nodes", "").Value(); got != float64(m.NodeCount()) {
		t.Fatalf("nodes gauge = %v, want %d", got, m.NodeCount())
	}
	if got := reg.Histogram("ph_monitor_rotation_seconds", "", nil).Count(); got != uint64(m.Rotations()) {
		t.Fatalf("rotation histogram count = %d, want %d", got, m.Rotations())
	}

	// Per-group series reconcile with GroupStats, and the PGE gauges with
	// ComputePGE.
	groupTweets := reg.CounterVec("ph_monitor_group_tweets_total", "", "selector")
	nodeHours := reg.CounterVec("ph_monitor_group_node_hours_total", "", "selector")
	spams := reg.GaugeVec("ph_monitor_group_spams", "", "selector")
	spammers := reg.GaugeVec("ph_monitor_group_spammers", "", "selector")
	pge := reg.GaugeVec("ph_monitor_group_pge", "", "selector")
	pgeBySelector := make(map[string]float64)
	for _, row := range ComputePGE(m.Groups()) {
		pgeBySelector[row.Selector.String()] = row.PGE
	}
	for _, g := range m.Groups() {
		sel := g.Spec.Selector.String()
		if got := groupTweets.With(sel).Value(); got != float64(g.Tweets) {
			t.Fatalf("%s tweets = %v, want %d", sel, got, g.Tweets)
		}
		if got := nodeHours.With(sel).Value(); !approxEq(got, g.NodeHours) {
			t.Fatalf("%s node-hours = %v, want %v", sel, got, g.NodeHours)
		}
		if got := spams.With(sel).Value(); got != float64(g.Spams) {
			t.Fatalf("%s spams = %v, want %d", sel, got, g.Spams)
		}
		if got := spammers.With(sel).Value(); got != float64(len(g.Spammers)) {
			t.Fatalf("%s spammers = %v, want %d", sel, got, len(g.Spammers))
		}
		if got := pge.With(sel).Value(); !approxEq(got, pgeBySelector[sel]) {
			t.Fatalf("%s pge gauge = %v, want %v", sel, got, pgeBySelector[sel])
		}
	}

	// Detector counters reconcile with the verdicts.
	spamCount := 0
	for _, v := range verdicts {
		if v {
			spamCount++
		}
	}
	if got := reg.Counter("ph_detector_classifications_total", "").Value(); got != float64(len(verdicts)) {
		t.Fatalf("classifications = %v, want %d", got, len(verdicts))
	}
	if got := reg.Counter("ph_detector_spam_total", "").Value(); got != float64(spamCount) {
		t.Fatalf("detector spam = %v, want %d", got, spamCount)
	}
	wantRatio := float64(spamCount) / float64(len(verdicts))
	if got := reg.Gauge("ph_detector_spam_ratio", "").Value(); !approxEq(got, wantRatio) {
		t.Fatalf("spam ratio = %v, want %v", got, wantRatio)
	}
	if got := reg.Histogram("ph_detector_train_seconds", "", nil).Count(); got != 1 {
		t.Fatalf("train histogram count = %d, want 1", got)
	}

	// The whole registry must expose as valid Prometheus text.
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ParseText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("core instrumentation exposition invalid: %v", err)
	}
}

// TestAccrueHoursUpdatesMetrics pins the static-deployment path: accrued
// hours land in the node-hours counters without a rotation tick.
func TestAccrueHoursUpdatesMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	w := testWorld(t)
	m := NewMonitor(MonitorConfig{Specs: RandomSpec(20), Seed: 1, Metrics: reg},
		&LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	m.AccrueHours(2 * time.Hour)
	g := m.Groups()[0]
	sel := g.Spec.Selector.String()
	got := reg.CounterVec("ph_monitor_group_node_hours_total", "", "selector").With(sel).Value()
	if !approxEq(got, g.NodeHours) {
		t.Fatalf("node-hours counter = %v, want %v", got, g.NodeHours)
	}
	if reg.Counter("ph_monitor_rotations_total", "").Value() != 1 {
		t.Fatal("AccrueHours must not count as a rotation")
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
