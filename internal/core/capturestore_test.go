package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// fakeCapture builds a synthetic capture with recognizable field values.
func fakeCapture(i int) *Capture {
	var vec features.Vector
	vec[0] = float64(i)
	vec[features.NumFeatures-1] = float64(-i)
	sender := &socialnet.Account{
		ID:          socialnet.AccountID(1000 + i),
		ScreenName:  "sender",
		Description: "desc",
		CreatedAt:   time.Unix(int64(i), 0).UTC(),
	}
	c := &Capture{
		Tweet: &socialnet.Tweet{
			ID:        socialnet.TweetID(i),
			AuthorID:  sender.ID,
			CreatedAt: time.Unix(int64(i)*60, 0).UTC(),
			Text:      "hello world",
			Mentions:  []socialnet.AccountID{7},
		},
		Sender: sender,
		Groups: []int{0, 2},
		Vector: vec,
		Spam:   i%3 == 0,
	}
	if i%2 == 0 {
		c.Receiver = &socialnet.Account{ID: 7, ScreenName: "node"}
	}
	c.senderSnap = c.Sender
	c.receiverSnap = c.Receiver
	return c
}

// TestCaptureStoreUnboundedKeepsAll verifies cap 0 behaves like the seed's
// unbounded slice.
func TestCaptureStoreUnboundedKeepsAll(t *testing.T) {
	s := NewCaptureStore(0, metrics.NewRegistry())
	for i := 0; i < 100; i++ {
		if ev := s.Append(fakeCapture(i)); ev != nil {
			t.Fatalf("unbounded store evicted capture %d", i)
		}
	}
	if s.Len() != 100 || s.Evicted() != 0 {
		t.Fatalf("len=%d evicted=%d, want 100/0", s.Len(), s.Evicted())
	}
}

// TestCaptureStoreBoundedUnderLongStream streams 10× the cap through a
// bounded store and requires: memory stays at the cap, eviction is
// oldest-first, and the retained window is exactly the newest cap items.
func TestCaptureStoreBoundedUnderLongStream(t *testing.T) {
	const cap = 64
	const n = 10 * cap
	reg := metrics.NewRegistry()
	s := NewCaptureStore(cap, reg)
	for i := 0; i < n; i++ {
		ev := s.Append(fakeCapture(i))
		if i < cap {
			if ev != nil {
				t.Fatalf("eviction before cap at %d", i)
			}
			continue
		}
		if ev == nil {
			t.Fatalf("no eviction past cap at %d", i)
		}
		if got := int(ev.Tweet.ID); got != i-cap {
			t.Fatalf("evicted tweet %d at step %d, want oldest %d", got, i, i-cap)
		}
		if s.Len() != cap {
			t.Fatalf("len %d exceeded cap at step %d", s.Len(), i)
		}
	}
	if s.Evicted() != n-cap {
		t.Fatalf("evicted = %d, want %d", s.Evicted(), n-cap)
	}
	snap := s.Snapshot()
	if len(snap) != cap {
		t.Fatalf("snapshot len = %d, want %d", len(snap), cap)
	}
	for i, c := range snap {
		if want := socialnet.TweetID(n - cap + i); c.Tweet.ID != want {
			t.Fatalf("snapshot[%d] tweet %d, want %d (not oldest-first)", i, c.Tweet.ID, want)
		}
	}
	// The instrumentation agrees with the store.
	byName := map[string]float64{}
	for _, fam := range reg.Snapshot() {
		for _, sm := range fam.Samples {
			byName[fam.Name] = sm.Value
		}
	}
	if byName["ph_capture_store_size"] != cap {
		t.Fatalf("ph_capture_store_size = %v, want %d", byName["ph_capture_store_size"], cap)
	}
	if byName["ph_capture_store_evicted_total"] != n-cap {
		t.Fatalf("ph_capture_store_evicted_total = %v, want %d",
			byName["ph_capture_store_evicted_total"], n-cap)
	}
}

// TestCaptureStoreSnapshotIsCopy mutates the returned slice and checks the
// store is unaffected.
func TestCaptureStoreSnapshotIsCopy(t *testing.T) {
	s := NewCaptureStore(0, metrics.NewRegistry())
	for i := 0; i < 10; i++ {
		s.Append(fakeCapture(i))
	}
	snap := s.Snapshot()
	for i := range snap {
		snap[i] = nil
	}
	for i, c := range s.Snapshot() {
		if c == nil || c.Tweet.ID != socialnet.TweetID(i) {
			t.Fatalf("store corrupted through snapshot at %d", i)
		}
	}
}

// TestCaptureStoreSpillRoundTrip spills a bounded store to a buffer and
// restores it into a fresh store, requiring the retained window, order,
// vectors, and eviction count to survive (traces are dropped by contract).
func TestCaptureStoreSpillRoundTrip(t *testing.T) {
	src := NewCaptureStore(16, metrics.NewRegistry())
	for i := 0; i < 40; i++ {
		src.Append(fakeCapture(i))
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCaptureStore(16, metrics.NewRegistry())
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() || dst.Evicted() != src.Evicted() {
		t.Fatalf("restored len/evicted = %d/%d, want %d/%d",
			dst.Len(), dst.Evicted(), src.Len(), src.Evicted())
	}
	want := src.Snapshot()
	got := dst.Snapshot()
	for i := range want {
		w, g := want[i], got[i]
		if g.Tweet.ID != w.Tweet.ID || g.Tweet.Text != w.Tweet.Text {
			t.Fatalf("capture %d tweet mismatch: %+v vs %+v", i, g.Tweet, w.Tweet)
		}
		if (g.Sender == nil) != (w.Sender == nil) ||
			(g.Receiver == nil) != (w.Receiver == nil) {
			t.Fatalf("capture %d nil-ness mismatch", i)
		}
		if g.Sender != nil && g.Sender.ID != w.Sender.ID {
			t.Fatalf("capture %d sender %d, want %d", i, g.Sender.ID, w.Sender.ID)
		}
		if g.Vector != w.Vector {
			t.Fatalf("capture %d vector mismatch", i)
		}
		if g.Spam != w.Spam {
			t.Fatalf("capture %d spam flag mismatch", i)
		}
	}
}

// TestCaptureStoreRestoreReEvicts restores a wide snapshot into a narrower
// store and requires deterministic oldest-first re-eviction.
func TestCaptureStoreRestoreReEvicts(t *testing.T) {
	src := NewCaptureStore(0, metrics.NewRegistry())
	for i := 0; i < 30; i++ {
		src.Append(fakeCapture(i))
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCaptureStore(8, metrics.NewRegistry())
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 8 {
		t.Fatalf("restored len = %d, want 8", dst.Len())
	}
	for i, c := range dst.Snapshot() {
		if want := socialnet.TweetID(22 + i); c.Tweet.ID != want {
			t.Fatalf("restored[%d] = %d, want %d", i, c.Tweet.ID, want)
		}
	}
}

// TestCaptureStoreReadGarbage verifies a corrupt spill errors instead of
// panicking or silently clearing into a half-restored state being used.
func TestCaptureStoreReadGarbage(t *testing.T) {
	s := NewCaptureStore(4, metrics.NewRegistry())
	if err := s.ReadSnapshot(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
}

// TestMonitorCapturesReturnsCopy is the aliasing fix's regression test:
// callers mutating the slice returned by Captures() must not corrupt the
// monitor's retained state.
func TestMonitorCapturesReturnsCopy(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs:   StandardSpecs(1),
		Seed:    1,
		Metrics: metrics.NewRegistry(),
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(2)

	before := m.Captures()
	if len(before) == 0 {
		t.Fatal("no captures after 2 hours")
	}
	wantIDs := make([]socialnet.TweetID, len(before))
	for i, c := range before {
		wantIDs[i] = c.Tweet.ID
	}
	// Vandalize the returned slice every way a caller could.
	for i := range before {
		before[i] = nil
	}
	before = append(before[:0], (*Capture)(nil))
	_ = before

	after := m.Captures()
	if len(after) != len(wantIDs) {
		t.Fatalf("monitor lost captures: %d vs %d", len(after), len(wantIDs))
	}
	for i, c := range after {
		if c == nil {
			t.Fatalf("capture %d nilled through the returned slice", i)
		}
		if c.Tweet.ID != wantIDs[i] {
			t.Fatalf("capture %d reordered: %d vs %d", i, c.Tweet.ID, wantIDs[i])
		}
	}
}
