package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/boost"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/forest"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/knn"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/svm"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// ClassifierName identifies one of the paper's five compared detectors
// (Table IV).
type ClassifierName string

// The five classifier families of the paper's Table IV.
const (
	ClassifierDT  ClassifierName = "DT"
	ClassifierKNN ClassifierName = "kNN"
	ClassifierSVM ClassifierName = "SVM"
	ClassifierEGB ClassifierName = "EGB"
	ClassifierRF  ClassifierName = "RF"
)

// ClassifierNames lists the families in the paper's Table IV row order.
var ClassifierNames = []ClassifierName{
	ClassifierDT, ClassifierKNN, ClassifierSVM, ClassifierEGB, ClassifierRF,
}

// NewClassifier constructs a fresh classifier of the named family with the
// configurations used for the paper's comparison (RF: 70 trees, depth 700).
// Split finding is exact — every distinct feature value is a candidate
// threshold — which is the mode all paper-config results and golden
// fingerprints are pinned under.
func NewClassifier(name ClassifierName, seed int64) (ml.Classifier, error) {
	return newClassifierBins(name, seed, 0)
}

// DefaultRetrainBins is the histogram bin count retraining and
// cross-validation loops default to. 64 quantile bins keep split quality
// within noise of the exact scan on the 58-feature space while cutting
// the candidate set per node by orders of magnitude — the right trade
// where a model is fit over and over (sliding-window retrains, k-fold
// CV), as opposed to the single paper-config fit that must stay exact.
const DefaultRetrainBins = 64

// NewBinnedClassifier is NewClassifier with histogram-binned split
// finding (DefaultRetrainBins quantile edges) for the tree-based
// families; kNN and SVM have no split search and are unchanged. Use it
// in loops that refit many times; keep NewClassifier where exactness
// against the paper configuration matters.
func NewBinnedClassifier(name ClassifierName, seed int64) (ml.Classifier, error) {
	return newClassifierBins(name, seed, DefaultRetrainBins)
}

func newClassifierBins(name ClassifierName, seed int64, bins int) (ml.Classifier, error) {
	switch name {
	case ClassifierDT:
		return tree.New(tree.Config{MaxDepth: 6, MinLeaf: 8, Seed: seed, Bins: bins}), nil
	case ClassifierKNN:
		return knn.New(knn.Config{K: 7, MaxTrain: 4000, Seed: seed}), nil
	case ClassifierSVM:
		return svm.New(svm.Config{Epochs: 15, PositiveWeight: 3, Seed: seed}), nil
	case ClassifierEGB:
		return boost.New(boost.Config{
			Rounds: 160, MaxDepth: 5, LearningRate: 0.15, MinLeaf: 5,
			Subsample: 0.8, Seed: seed, Bins: bins,
		}), nil
	case ClassifierRF:
		cfg := forest.PaperConfig()
		cfg.Seed = seed
		cfg.Bins = bins
		return forest.New(cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown classifier %q", name)
	}
}

// Detector is the pseudo-honeypot spam detector: a trained classifier over
// the 58-feature space.
type Detector struct {
	clf    ml.Classifier
	ins    *detectorInstruments
	tracer *trace.Tracer
}

// NewDetector wraps a classifier, reporting through metrics.Default() and
// tracing through trace.Default().
func NewDetector(clf ml.Classifier) *Detector {
	return &Detector{
		clf:    clf,
		ins:    newDetectorInstruments(metrics.Default()),
		tracer: trace.Default(),
	}
}

// SetMetrics rebinds the detector's instrumentation to r (call before
// Train/Classify; tests use it to reconcile against a private registry).
func (d *Detector) SetMetrics(r *metrics.Registry) {
	d.ins = newDetectorInstruments(r)
}

// SetTracer rebinds the detector's tracer (nil restores trace.Default()).
func (d *Detector) SetTracer(t *trace.Tracer) {
	if t == nil {
		t = trace.Default()
	}
	d.tracer = t
}

// BuildDataset joins captured feature vectors with pipeline labels into a
// training dataset.
func BuildDataset(captures []*Capture, labels *label.Result) (*ml.Dataset, error) {
	if labels == nil {
		return nil, errors.New("core: nil labels")
	}
	x := make([][]float64, 0, len(captures))
	y := make([]bool, 0, len(captures))
	for _, c := range captures {
		vec := make([]float64, len(c.Vector))
		copy(vec, c.Vector[:])
		x = append(x, vec)
		y = append(y, labels.IsSpam(c.Tweet.ID))
	}
	return ml.NewDataset(x, y)
}

// Train fits the detector on labeled captures.
func (d *Detector) Train(captures []*Capture, labels *label.Result) error {
	ds, err := BuildDataset(captures, labels)
	if err != nil {
		return err
	}
	if ds.Len() == 0 {
		return errors.New("core: empty training set")
	}
	tr := d.tracer.Start("detector_train")
	if tr != nil {
		tr.SetAttr("samples", fmt.Sprint(ds.Len()))
	}
	defer trace.SetActive(tr)()
	sp := tr.StartSpan("detector_train")
	start := time.Now()
	if err := d.clf.Fit(ds.X, ds.Y); err != nil {
		tr.Finish()
		return err
	}
	d.ins.trainSecs.ObserveDuration(start)
	sp.End()
	tr.Finish()
	return nil
}

// FeatureImportance reports the trained detector's normalized per-feature
// importances over the 58-feature space, or nil when the underlying
// classifier family does not expose them (only the random forest does).
func (d *Detector) FeatureImportance() []float64 {
	type importancer interface{ FeatureImportance(int) []float64 }
	f, ok := d.clf.(importancer)
	if !ok {
		return nil
	}
	return f.FeatureImportance(features.NumFeatures)
}

// Classify returns a verdict per capture, index-aligned. The batch fans
// out over the process-default worker pool in contiguous chunks; every
// classifier family's Predict is read-only after Fit, so verdicts are
// identical to a sequential pass at any worker count.
func (d *Detector) Classify(captures []*Capture) []bool {
	start := time.Now()
	tr := d.tracer.Start("detector_classify")
	if tr != nil {
		tr.SetAttr("captures", fmt.Sprint(len(captures)))
	}
	defer trace.SetActive(tr)()
	sp := tr.StartSpan("detector_classify")
	verdicts := make([]bool, len(captures))
	if bp, ok := d.clf.(batchPredictor); ok && untraced(captures) {
		// Batch fast path: hand the whole batch to the classifier's
		// buffer-reusing batch predictor (the flat forest walks it
		// tree-major over contiguous nodes). Taken only when no capture
		// carries a trace — per-capture "classify" spans would otherwise
		// be lost — and identical to the per-sample path by the batch
		// predictors' contract.
		xs := classifyScratch.Get().(*[][]float64)
		vecs := (*xs)[:0]
		for _, c := range captures {
			vecs = append(vecs, c.Vector[:])
		}
		bp.PredictBatchInto(vecs, verdicts)
		clear(vecs) // drop capture references before pooling
		*xs = vecs[:0]
		classifyScratch.Put(xs)
	} else {
		parallel.ForEachChunk(len(captures), 0, classifyMinChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Each capture's own trace gets a "classify" span so the
				// per-capture journey covers the verdict; timing uses the
				// capture trace's clock, so simulated runs stay replayable.
				csp := captures[i].Trace.StartSpan("classify")
				verdicts[i] = d.clf.Predict(captures[i].Vector[:])
				csp.End()
			}
		})
	}
	sp.End()
	tr.Finish()
	spams := 0
	for _, v := range verdicts {
		if v {
			spams++
		}
	}
	d.ins.classifySecs.ObserveDuration(start)
	d.ins.classifications.Add(float64(len(verdicts)))
	d.ins.spams.Add(float64(spams))
	if len(verdicts) > 0 {
		d.ins.spamRatio.Set(float64(spams) / float64(len(verdicts)))
	}
	return verdicts
}

// classifyMinChunk keeps classification chunks large enough that pool
// dispatch overhead stays negligible next to each prediction (a 70-tree
// vote for the deployed RF).
const classifyMinChunk = 16

// batchPredictor is the optional batch interface classifiers expose for
// buffer-reusing whole-batch prediction (the random forest's flattened
// predictor implements it).
type batchPredictor interface {
	PredictBatchInto(x [][]float64, out []bool) []bool
}

// classifyScratch pools the per-batch feature-vector view built for the
// batch fast path; the views alias capture vectors and are released before
// Classify returns.
var classifyScratch = sync.Pool{New: func() any { return new([][]float64) }}

// untraced reports whether no capture in the batch carries a trace.
func untraced(captures []*Capture) bool {
	for _, c := range captures {
		if c.Trace != nil {
			return false
		}
	}
	return true
}

// Attach wires a monitor to an in-process engine: the node set rotates at
// every simulated hour start and the monitor filters the engine's firehose.
// It returns a detach function removing the stream subscription.
func Attach(m *Monitor, e *socialnet.Engine) (detach func()) {
	world := e.World()
	e.OnHourStart(func(hour int, now time.Time) {
		m.Rotate(now, time.Hour)
	})
	return e.Subscribe(func(t *socialnet.Tweet) {
		m.OnTweet(t, world.Account)
	})
}
