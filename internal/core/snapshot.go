package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// This file is the monitor-side half of crash recovery (DESIGN.md §14):
// checkpointable snapshots of the per-group statistics and the online
// detector, plus AdoptCapture, the WAL-replay twin of Match.
//
// NodeHours is deliberately absent from the group snapshot: recovery
// re-runs the simulation from hour zero at the same seed, so Rotate fires
// the same number of times and rebuilds the node-hours denominator (and
// the node/used/rng selection state) deterministically. Persisting it too
// would double-count.

// GroupStatsSnapshot is the checkpointed portion of one GroupStats. Member
// sets are flattened to sorted slices for a deterministic encoding.
type GroupStatsSnapshot struct {
	Tweets   int
	Senders  []socialnet.AccountID
	Spams    int
	Spammers []socialnet.AccountID
}

// SnapshotGroupStats captures the replay-dependent counters of every
// selector group, index-aligned with the monitor's group list.
func (m *Monitor) SnapshotGroupStats() []GroupStatsSnapshot {
	out := make([]GroupStatsSnapshot, len(m.groups))
	for gi, g := range m.groups {
		out[gi] = GroupStatsSnapshot{
			Tweets:   g.Tweets,
			Senders:  sortedIDs(g.Senders),
			Spams:    g.Spams,
			Spammers: sortedIDs(g.Spammers),
		}
	}
	return out
}

// RestoreGroupStats replaces the replay-dependent counters of every group
// with a snapshot taken by SnapshotGroupStats, and re-bases the capture
// counters of the monitor's instrumentation. The snapshot must come from a
// monitor with the same selector specs.
func (m *Monitor) RestoreGroupStats(snap []GroupStatsSnapshot) error {
	if len(snap) != len(m.groups) {
		return fmt.Errorf("core: group snapshot has %d groups, monitor has %d",
			len(snap), len(m.groups))
	}
	for gi, gs := range snap {
		g := m.groups[gi]
		g.Tweets = gs.Tweets
		g.Senders = idSet(gs.Senders)
		g.Spams = gs.Spams
		g.Spammers = idSet(gs.Spammers)
		m.ins.groupTweets[gi].Add(float64(gs.Tweets))
		m.ins.updateGroup(gi, g)
	}
	// The per-capture counter re-bases from the capture store: appended =
	// retained + evicted, restored just before this call.
	m.ins.tweetsCaptured.Add(float64(uint64(m.store.Len()) + m.store.Evicted()))
	return nil
}

func sortedIDs(set map[socialnet.AccountID]struct{}) []socialnet.AccountID {
	out := make([]socialnet.AccountID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idSet(ids []socialnet.AccountID) map[socialnet.AccountID]struct{} {
	set := make(map[socialnet.AccountID]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

// ReceiverSnapshot returns the receiver profile frozen at match time (nil
// for tweets that mentioned no monitored account), the counterpart of
// SenderSnapshot. The WAL persists both snapshots so replayed extraction
// reads the same frozen values the original extraction did.
func (c *Capture) ReceiverSnapshot() *socialnet.Account { return c.receiverSnap }

// AdoptCapture is the WAL-replay twin of Match: it rebuilds a capture from
// its logged ingredients and repeats Match's per-group bookkeeping
// (Tweets, Senders, instrument counters). The group indices were decided
// by the original Match against the then-current node set, so no filtering
// happens here; lookup resolves the live accounts of the restored world.
// The caller then runs ExtractCapture and Store().Append exactly as the
// feature stage would. Replayed captures are untraced.
func (m *Monitor) AdoptCapture(t *socialnet.Tweet, senderSnap, receiverSnap *socialnet.Account,
	groups []int, lookup func(socialnet.AccountID) *socialnet.Account) (*Capture, error) {
	for _, gi := range groups {
		if gi < 0 || gi >= len(m.groups) {
			return nil, fmt.Errorf("core: replayed capture names group %d of %d", gi, len(m.groups))
		}
	}
	c := &Capture{
		Tweet:      t,
		Sender:     lookup(t.AuthorID),
		Groups:     groups,
		senderSnap: senderSnap,
	}
	if receiverSnap != nil {
		c.Receiver = lookup(receiverSnap.ID)
		c.receiverSnap = receiverSnap
	}
	for _, gi := range groups {
		g := m.groups[gi]
		g.Tweets++
		g.Senders[t.AuthorID] = struct{}{}
		m.ins.groupTweets[gi].Inc()
	}
	m.ins.tweetsCaptured.Inc()
	return c, nil
}

// onlineSnapshot is the gob payload of an OnlineDetector checkpoint. The
// fitted classifier itself is not serialized — see ReadSnapshot.
type onlineSnapshot struct {
	X         [][]float64
	Y         []bool
	SinceFit  int
	Retrains  int
	EverTrain bool
}

// WriteSnapshot serializes the detector's sliding window and retrain
// schedule to w.
func (o *OnlineDetector) WriteSnapshot(w io.Writer) error {
	snap := onlineSnapshot{
		X:         o.x,
		Y:         o.y,
		SinceFit:  o.sinceFit,
		Retrains:  o.retrains,
		EverTrain: o.everTrain,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode online snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot restores the window and retrain schedule from a snapshot
// written by WriteSnapshot, then performs a recovery refit: when the
// detector had ever trained, the model is re-fit on the restored window
// with the seed of the most recent retrain. The refit window may be
// slightly newer than the one behind the crashed model (observations since
// the last scheduled retrain are included), but the retrain counter — and
// therefore the seed sequence of every future retrain — is preserved
// exactly, so the detector reconverges with the uninterrupted run at its
// next scheduled retrain.
func (o *OnlineDetector) ReadSnapshot(r io.Reader) error {
	var snap onlineSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode online snapshot: %w", err)
	}
	o.x = snap.X
	o.y = snap.Y
	o.sinceFit = snap.SinceFit
	o.retrains = snap.Retrains
	o.everTrain = snap.EverTrain
	o.clf = nil
	if !o.everTrain || o.retrains == 0 {
		return nil
	}
	pos := 0
	for _, v := range o.y {
		if v {
			pos++
		}
	}
	if pos == 0 || pos == len(o.y) {
		return nil // single-class window: stay conservative until retrain
	}
	clf, err := newClassifierBins(o.name, o.seed+int64(o.retrains-1), o.bins)
	if err != nil {
		return err
	}
	if err := clf.Fit(o.x, o.y); err != nil {
		return fmt.Errorf("core: recovery refit: %w", err)
	}
	o.clf = clf
	return nil
}
