package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TestCaptureSnapshotRejectsCorruption is the spill-integrity regression
// test: a snapshot with a flipped payload byte, a truncated tail, or a
// foreign header must fail loudly and leave the store untouched.
func TestCaptureSnapshotRejectsCorruption(t *testing.T) {
	src := NewCaptureStore(0, metrics.NewRegistry())
	for i := 0; i < 10; i++ {
		src.Append(fakeCapture(i))
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	load := func(data []byte) error {
		dst := NewCaptureStore(0, metrics.NewRegistry())
		err := dst.ReadSnapshot(bytes.NewReader(data))
		if err == nil && dst.Len() != 10 {
			t.Fatalf("clean load restored %d captures, want 10", dst.Len())
		}
		if err != nil && dst.Len() != 0 {
			t.Fatal("failed load left partial state in the store")
		}
		return err
	}

	if err := load(good); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	// Flip one byte in the gob payload (past the 20-byte header): the CRC
	// must catch it even though gob might happily decode the result.
	for _, off := range []int{20, len(good) / 2, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		if err := load(bad); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		}
	}
	if err := load(good[:len(good)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := load(good[:10]); err == nil {
		t.Fatal("header-only snapshot accepted")
	}
	if err := load([]byte("GARBAGE!xxxxyyyyzzzz")); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

// TestOnlineDetectorSnapshotRoundTrip: window, counters, and the refit
// model survive serialization; subsequent observations behave like the
// uninterrupted detector's schedule.
func TestOnlineDetectorSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	online, err := NewOnlineDetector(ClassifierDT, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 55; i++ {
		c, label := driftCapture(rng, rng.Float64() < 0.4, 0)
		if err := online.Observe(c, label); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := online.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := NewOnlineDetector(ClassifierDT, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Retrains() != online.Retrains() {
		t.Fatalf("restored retrains = %d, want %d", restored.Retrains(), online.Retrains())
	}
	if restored.WindowSize() != online.WindowSize() {
		t.Fatalf("restored window = %d, want %d", restored.WindowSize(), online.WindowSize())
	}
	// The recovery refit produced a live model.
	c, _ := driftCapture(rng, true, 0)
	restored.Classify(c)
	// Subsequent retrains run on the preserved schedule and seed sequence.
	rngA, rngB := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		ca, la := driftCapture(rngA, rngA.Float64() < 0.4, 0)
		cb, lb := driftCapture(rngB, rngB.Float64() < 0.4, 0)
		if err := online.Observe(ca, la); err != nil {
			t.Fatal(err)
		}
		if err := restored.Observe(cb, lb); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Retrains() != online.Retrains() {
		t.Fatalf("post-restore retrain schedule diverged: %d vs %d",
			restored.Retrains(), online.Retrains())
	}

	if err := restored.ReadSnapshot(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage online snapshot accepted")
	}
}

// newSnapshotMonitor builds a monitor with two selector groups for the
// group-stats and adoption tests.
func newSnapshotMonitor(t *testing.T) *Monitor {
	t.Helper()
	specs := []SelectorSpec{
		{Selector: socialnet.Selector{Attr: socialnet.AttrFollowers, Value: 100}, Nodes: 2},
		{Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 50}, Nodes: 2},
	}
	return NewMonitor(MonitorConfig{Specs: specs, Seed: 1, Metrics: metrics.NewRegistry()}, nil)
}

// TestGroupStatsSnapshotRoundTrip: replay-dependent counters transfer to a
// fresh monitor with the same specs; mismatched shapes are rejected.
func TestGroupStatsSnapshotRoundTrip(t *testing.T) {
	m := newSnapshotMonitor(t)
	g := m.Groups()[0]
	g.Tweets = 4
	g.Senders[11] = struct{}{}
	g.Senders[12] = struct{}{}
	g.Spams = 2
	g.Spammers[11] = struct{}{}

	snap := m.SnapshotGroupStats()
	m2 := newSnapshotMonitor(t)
	if err := m2.RestoreGroupStats(snap); err != nil {
		t.Fatal(err)
	}
	for gi := range m.Groups() {
		a, b := m.Groups()[gi], m2.Groups()[gi]
		if a.Tweets != b.Tweets || a.Spams != b.Spams ||
			!reflect.DeepEqual(a.Senders, b.Senders) ||
			!reflect.DeepEqual(a.Spammers, b.Spammers) {
			t.Fatalf("group %d diverged after restore", gi)
		}
	}
	if err := m2.RestoreGroupStats(snap[:1]); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

// TestAdoptCaptureRepeatsBookkeeping: adopting a WAL record performs the
// same group accounting Match would, resolves live accounts, and keeps the
// logged profile snapshots for extraction.
func TestAdoptCaptureRepeatsBookkeeping(t *testing.T) {
	m := newSnapshotMonitor(t)
	live := map[socialnet.AccountID]*socialnet.Account{
		5: {ID: 5, ScreenName: "sender_live"},
		7: {ID: 7, ScreenName: "node_live"},
	}
	lookup := func(id socialnet.AccountID) *socialnet.Account { return live[id] }
	tw := &socialnet.Tweet{ID: 1, AuthorID: 5, Mentions: []socialnet.AccountID{7}}
	senderSnap := &socialnet.Account{ID: 5, ScreenName: "sender_frozen"}
	receiverSnap := &socialnet.Account{ID: 7, ScreenName: "node_frozen"}

	c, err := m.AdoptCapture(tw, senderSnap, receiverSnap, []int{1}, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sender != live[5] || c.Receiver != live[7] {
		t.Fatal("adopted capture not bound to live accounts")
	}
	if c.SenderSnapshot() != senderSnap || c.ReceiverSnapshot() != receiverSnap {
		t.Fatal("adopted capture lost its logged profile snapshots")
	}
	g := m.Groups()[1]
	if g.Tweets != 1 {
		t.Fatalf("group tweets = %d, want 1", g.Tweets)
	}
	if _, ok := g.Senders[5]; !ok {
		t.Fatal("sender not recorded in group")
	}
	if other := m.Groups()[0]; other.Tweets != 0 {
		t.Fatal("unrelated group mutated")
	}

	if _, err := m.AdoptCapture(tw, nil, nil, []int{9}, lookup); err == nil {
		t.Fatal("out-of-range group index accepted")
	}
	// ExtractCapture works on an adopted capture (snapshots present).
	m.ExtractCapture(c)
}
