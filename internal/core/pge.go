package core

import (
	"sort"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// PGERow is one entry of the garner-efficiency ranking (paper §V-E):
// PGE_i = N_i / (G_i · T_i), spammers garnered per pseudo-honeypot node
// per hour.
type PGERow struct {
	Selector  socialnet.Selector
	Spammers  int
	Spams     int
	Tweets    int
	NodeHours float64
	PGE       float64
}

// ComputePGE ranks every selector group by garner efficiency, highest
// first.
func ComputePGE(groups []*GroupStats) []PGERow {
	rows := make([]PGERow, 0, len(groups))
	for _, g := range groups {
		row := PGERow{
			Selector:  g.Spec.Selector,
			Spammers:  len(g.Spammers),
			Spams:     g.Spams,
			Tweets:    g.Tweets,
			NodeHours: g.NodeHours,
		}
		if g.NodeHours > 0 {
			row.PGE = float64(len(g.Spammers)) / g.NodeHours
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].PGE > rows[j].PGE })
	return rows
}

// TopSelectors returns the k selectors with the highest PGE — the paper's
// refinement step that defines the advanced pseudo-honeypot.
func TopSelectors(rows []PGERow, k int) []socialnet.Selector {
	if k > len(rows) {
		k = len(rows)
	}
	out := make([]socialnet.Selector, 0, k)
	for _, r := range rows[:k] {
		out = append(out, r.Selector)
	}
	return out
}

// AdvancedSpecs builds the advanced pseudo-honeypot deployment plan: the
// top-k PGE selectors with nodesEach accounts per selector (the paper uses
// k = 10, nodesEach = 10 for a 100-node system).
func AdvancedSpecs(rows []PGERow, k, nodesEach int) []SelectorSpec {
	sels := TopSelectors(rows, k)
	specs := make([]SelectorSpec, 0, len(sels))
	for _, s := range sels {
		specs = append(specs, SelectorSpec{Selector: s, Nodes: nodesEach})
	}
	return specs
}

// AttrSummary aggregates group statistics to whole-attribute level (the
// paper's Table V rows: e.g. all ten "lists count" sample values pooled).
type AttrSummary struct {
	Attr     socialnet.Attribute
	Label    string
	Tweets   int
	Spams    int
	Spammers int
}

// SummarizeByAttribute pools group statistics per attribute. Hashtag and
// trend selectors are reported per category/state (as the paper's
// Table V does, e.g. "Hashtag: Social" and "Trending up" are rows).
func SummarizeByAttribute(groups []*GroupStats) []AttrSummary {
	type key struct {
		attr  socialnet.Attribute
		label string
	}
	pooled := make(map[key]*AttrSummary)
	spammerSets := make(map[key]map[socialnet.AccountID]struct{})
	order := make([]key, 0)
	for _, g := range groups {
		sel := g.Spec.Selector
		k := key{attr: sel.Attr, label: sel.Attr.String()}
		switch sel.Attr {
		case socialnet.AttrHashtag:
			k.label = "Hashtag: " + sel.Category.String()
		case socialnet.AttrTrend:
			k.label = sel.Trend.String()
		}
		s, ok := pooled[k]
		if !ok {
			s = &AttrSummary{Attr: sel.Attr, Label: k.label}
			pooled[k] = s
			spammerSets[k] = make(map[socialnet.AccountID]struct{})
			order = append(order, k)
		}
		s.Tweets += g.Tweets
		s.Spams += g.Spams
		for id := range g.Spammers {
			spammerSets[k][id] = struct{}{}
		}
	}
	out := make([]AttrSummary, 0, len(order))
	for _, k := range order {
		s := pooled[k]
		s.Spammers = len(spammerSets[k])
		out = append(out, *s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Spammers > out[j].Spammers })
	return out
}
