package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func TestSelectionHygieneSkipsFollowHeavyAccounts(t *testing.T) {
	w := testWorld(t)
	m := NewMonitor(MonitorConfig{
		Specs: []SelectorSpec{{
			Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 1000},
			Nodes:    20,
		}},
		Seed: 1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	for id := range m.CurrentNodes() {
		a := w.Account(id)
		if a.FriendFollowerRatio() > DefaultMaxRatio {
			t.Fatalf("node %d ratio %v exceeds hygiene bound",
				id, a.FriendFollowerRatio())
		}
	}
}

func TestSelectionHygieneDisabled(t *testing.T) {
	w := testWorld(t)
	mk := func(maxRatio float64) int {
		m := NewMonitor(MonitorConfig{
			Specs: []SelectorSpec{{
				Selector: socialnet.Selector{Attr: socialnet.AttrFriends, Value: 1000},
				Nodes:    200,
			}},
			MaxRatio: maxRatio,
			Seed:     1,
		}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
		m.Rotate(time.Now(), time.Hour)
		return m.NodeCount()
	}
	withHygiene := mk(0)     // default bound
	withoutHygiene := mk(-1) // disabled
	if withoutHygiene < withHygiene {
		t.Fatalf("disabling hygiene shrank the candidate pool: %d < %d",
			withoutHygiene, withHygiene)
	}
}

func TestHygieneNotAppliedToRatioSelectors(t *testing.T) {
	w := testWorld(t)
	// The ratio=10 sample value deliberately selects follow-heavy
	// accounts; hygiene must not empty it.
	m := NewMonitor(MonitorConfig{
		Specs: []SelectorSpec{{
			Selector: socialnet.Selector{Attr: socialnet.AttrFriendFollowerRatio, Value: 10},
			Nodes:    10,
		}},
		Seed: 1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	if m.NodeCount() == 0 {
		t.Fatal("hygiene emptied the ratio-attribute selector")
	}
	found := false
	for id := range m.CurrentNodes() {
		if w.Account(id).FriendFollowerRatio() > DefaultMaxRatio*0.6 {
			found = true
		}
	}
	if !found {
		t.Fatal("ratio selector found no high-ratio accounts")
	}
}

func TestActiveOnlyColdStartFallback(t *testing.T) {
	// Hour zero: nobody has posted, so no account is Active. Selection
	// must fall back rather than start empty.
	w := testWorld(t)
	m := NewMonitor(MonitorConfig{
		Specs:      RandomSpec(40),
		ActiveOnly: true,
		Seed:       1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	m.Rotate(time.Now(), time.Hour)
	if m.NodeCount() < 40 {
		t.Fatalf("cold-start selection found only %d nodes", m.NodeCount())
	}
}
