package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// TestClassifyDeterministicAcrossWorkerCounts verifies the
// worker-invariance contract on the detection hot path: a trained detector
// returns identical verdicts whether the batch fans out over 1 or 8
// workers (driven through the PH_WORKERS knob, as a deployment would).
func TestClassifyDeterministicAcrossWorkerCounts(t *testing.T) {
	w := testWorld(t)
	e := socialnet.NewEngine(w)
	m := NewMonitor(MonitorConfig{
		Specs: RandomSpec(120),
		Seed:  1,
	}, &LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	detach := Attach(m, e)
	defer detach()
	e.RunHours(6)

	captures := m.Captures()
	if len(captures) < 50 {
		t.Fatalf("only %d captures", len(captures))
	}
	tweets := make([]*socialnet.Tweet, len(captures))
	for i, c := range captures {
		tweets[i] = c.Tweet
	}
	labels := label.NewPipeline(label.DefaultConfig()).
		Run(label.NewCorpus(tweets, w.Account), label.NewNoisyOracle(w, 0.02, 3))

	clf, err := NewClassifier(ClassifierRF, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(clf)
	if err := det.Train(captures, labels); err != nil {
		t.Fatal(err)
	}

	t.Setenv(parallel.EnvWorkers, "1")
	ref := det.Classify(captures)
	t.Setenv(parallel.EnvWorkers, "8")
	got := det.Classify(captures)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("verdicts diverge between PH_WORKERS=1 and PH_WORKERS=8")
	}
}
