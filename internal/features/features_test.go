package features

import (
	"sort"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

func testAccount(id socialnet.AccountID) *socialnet.Account {
	return &socialnet.Account{
		ID:              id,
		ScreenName:      "user_test",
		Name:            "User Test",
		Description:     "hello world 123",
		CreatedAt:       simclock.Epoch.Add(-100 * 24 * time.Hour),
		FriendsCount:    50,
		FollowersCount:  200,
		ListedCount:     10,
		FavouritesCount: 300,
		StatusesCount:   1000,
	}
}

func testTweet(id socialnet.TweetID, author socialnet.AccountID, at time.Time, text string) *socialnet.Tweet {
	return &socialnet.Tweet{
		ID:        id,
		AuthorID:  author,
		CreatedAt: at,
		Kind:      socialnet.KindTweet,
		Source:    socialnet.SourceMobile,
		Text:      text,
	}
}

func TestNumFeaturesIs58(t *testing.T) {
	if NumFeatures != 58 {
		t.Fatalf("NumFeatures = %d, want the paper's 58", NumFeatures)
	}
	if FBehaviorEnvScore != 57 {
		t.Fatalf("last feature index = %d, want 57", FBehaviorEnvScore)
	}
}

func TestFeatureNamesComplete(t *testing.T) {
	seen := make(map[string]int, NumFeatures)
	for i := 0; i < NumFeatures; i++ {
		n := Name(i)
		if n == "" || n == "unknown" {
			t.Fatalf("feature %d has no name", i)
		}
		if prev, dup := seen[n]; dup {
			t.Fatalf("features %d and %d share name %q", prev, i, n)
		}
		seen[n] = i
	}
	if Name(-1) != "unknown" || Name(NumFeatures) != "unknown" {
		t.Fatal("out-of-range Name should be unknown")
	}
}

func TestSenderProfileFeatures(t *testing.T) {
	e := NewExtractor()
	sender := testAccount(1)
	sender.Verified = true
	sender.DefaultProfileImage = true
	tw := testTweet(1, 1, simclock.Epoch, "hello")
	v := e.Extract(Observation{Tweet: tw, Sender: sender})

	if v[FSenderFriends] != 50 || v[FSenderFollowers] != 200 {
		t.Fatal("sender friend/follower features wrong")
	}
	if v[FSenderAgeDays] != 100 {
		t.Fatalf("sender age = %v, want 100", v[FSenderAgeDays])
	}
	if v[FSenderStatusesPerDay] != 10 {
		t.Fatalf("sender statuses/day = %v, want 10", v[FSenderStatusesPerDay])
	}
	if v[FSenderVerified] != 1 || v[FSenderDefaultImage] != 1 {
		t.Fatal("sender boolean features wrong")
	}
	if v[FSenderScreenNameLen] != float64(len("user_test")) {
		t.Fatal("screen name length wrong")
	}
	if v[FSenderDescDigits] != 3 {
		t.Fatalf("desc digits = %v, want 3", v[FSenderDescDigits])
	}
}

func TestReceiverFeaturesZeroWithoutReceiver(t *testing.T) {
	e := NewExtractor()
	tw := testTweet(1, 1, simclock.Epoch, "hello")
	v := e.Extract(Observation{Tweet: tw, Sender: testAccount(1)})
	for i := FReceiverFriends; i <= FReceiverDescDigits; i++ {
		if v[i] != 0 {
			t.Fatalf("receiver feature %d = %v without a receiver", i, v[i])
		}
	}
}

func TestContentFeatures(t *testing.T) {
	e := NewExtractor()
	tw := &socialnet.Tweet{
		ID: 1, AuthorID: 1, CreatedAt: simclock.Epoch,
		Kind: socialnet.KindQuote, Source: socialnet.SourceThirdParty,
		Text:     "win money now 123 \U0001F911",
		Hashtags: []string{"a", "b"},
		Mentions: []socialnet.AccountID{2},
	}
	v := e.Extract(Observation{Tweet: tw, Sender: testAccount(1)})
	if v[FContentKind] != float64(socialnet.KindQuote) {
		t.Fatal("content kind wrong")
	}
	if v[FContentSource] != float64(socialnet.SourceThirdParty) {
		t.Fatal("content source wrong")
	}
	if v[FContentHashtags] != 2 || v[FContentMentions] != 1 {
		t.Fatal("hashtag/mention counts wrong")
	}
	if v[FContentEmoji] != 1 {
		t.Fatalf("content emoji = %v, want 1", v[FContentEmoji])
	}
	if v[FContentDigits] != 3 {
		t.Fatalf("content digits = %v, want 3", v[FContentDigits])
	}
}

func TestRepeatedContentFlag(t *testing.T) {
	e := NewExtractor()
	s := testAccount(1)
	first := e.Extract(Observation{Tweet: testTweet(1, 1, simclock.Epoch, "same text"), Sender: s})
	second := e.Extract(Observation{Tweet: testTweet(2, 1, simclock.Epoch.Add(time.Minute), "same text"), Sender: s})
	if first[FContentRepeated] != 0 {
		t.Fatal("first occurrence flagged as repeated")
	}
	if second[FContentRepeated] != 1 {
		t.Fatal("second occurrence not flagged as repeated")
	}
}

func TestReciprocityAccumulates(t *testing.T) {
	e := NewExtractor()
	s, r := testAccount(1), testAccount(2)
	obs := func(id socialnet.TweetID, at time.Time) Observation {
		tw := testTweet(id, 1, at, "hi")
		tw.Mentions = []socialnet.AccountID{2}
		return Observation{Tweet: tw, Sender: s, Receiver: r}
	}
	v1 := e.Extract(obs(1, simclock.Epoch))
	v2 := e.Extract(obs(2, simclock.Epoch.Add(time.Minute)))
	v3 := e.Extract(obs(3, simclock.Epoch.Add(2*time.Minute)))
	if v1[FBehaviorReciprocity] != 0 || v2[FBehaviorReciprocity] != 1 || v3[FBehaviorReciprocity] != 2 {
		t.Fatalf("reciprocity sequence = %v %v %v, want 0 1 2",
			v1[FBehaviorReciprocity], v2[FBehaviorReciprocity], v3[FBehaviorReciprocity])
	}
}

func TestTweetKindDistribution(t *testing.T) {
	e := NewExtractor()
	s := testAccount(1)
	at := simclock.Epoch
	kinds := []socialnet.TweetKind{
		socialnet.KindTweet, socialnet.KindTweet, socialnet.KindRetweet,
		socialnet.KindQuote,
	}
	for i, k := range kinds {
		tw := testTweet(socialnet.TweetID(i+1), 1, at.Add(time.Duration(i)*time.Minute), "t")
		tw.Kind = k
		e.Extract(Observation{Tweet: tw, Sender: s})
	}
	// Next observation sees the distribution over the 4 prior tweets.
	v := e.Extract(Observation{Tweet: testTweet(9, 1, at.Add(time.Hour), "t"), Sender: s})
	if v[FBehaviorSenderTweetPct] != 0.5 {
		t.Fatalf("tweet pct = %v, want 0.5", v[FBehaviorSenderTweetPct])
	}
	if v[FBehaviorSenderRetweetPct] != 0.25 || v[FBehaviorSenderQuotePct] != 0.25 {
		t.Fatal("retweet/quote pcts wrong")
	}
}

func TestSourceDistribution(t *testing.T) {
	e := NewExtractor()
	s := testAccount(1)
	sources := []socialnet.Source{
		socialnet.SourceWeb, socialnet.SourceWeb,
		socialnet.SourceThirdParty, socialnet.SourceMobile,
	}
	for i, src := range sources {
		tw := testTweet(socialnet.TweetID(i+1), 1, simclock.Epoch.Add(time.Duration(i)*time.Minute), "t")
		tw.Source = src
		e.Extract(Observation{Tweet: tw, Sender: s})
	}
	v := e.Extract(Observation{Tweet: testTweet(9, 1, simclock.Epoch.Add(time.Hour), "t"), Sender: s})
	if v[FBehaviorSenderWebPct] != 0.5 {
		t.Fatalf("web pct = %v, want 0.5", v[FBehaviorSenderWebPct])
	}
	if v[FBehaviorSenderThirdPct] != 0.25 || v[FBehaviorSenderMobilePct] != 0.25 {
		t.Fatal("source pcts wrong")
	}
	if v[FBehaviorSenderOtherPct] != 0 {
		t.Fatal("other pct should be 0")
	}
}

func TestMentionTimeFromObservedPosts(t *testing.T) {
	e := NewExtractor()
	honeypot := testAccount(2)
	spammer := testAccount(3)

	// The honeypot posts (observed by the monitor, Category (1)).
	post := testTweet(1, 2, simclock.Epoch, "my own post")
	e.Extract(Observation{Tweet: post, Sender: honeypot})

	// 90 seconds later a spam mention arrives.
	mention := testTweet(2, 3, simclock.Epoch.Add(90*time.Second), "@user_test click this")
	mention.Mentions = []socialnet.AccountID{2}
	v := e.Extract(Observation{Tweet: mention, Sender: spammer, Receiver: honeypot})
	if v[FBehaviorMentionTime] != 90 {
		t.Fatalf("mention time = %v, want 90s", v[FBehaviorMentionTime])
	}
}

func TestMentionTimeUnknownDefaultsToDay(t *testing.T) {
	e := NewExtractor()
	mention := testTweet(1, 3, simclock.Epoch, "@x hi")
	mention.Mentions = []socialnet.AccountID{2}
	v := e.Extract(Observation{Tweet: mention, Sender: testAccount(3), Receiver: testAccount(2)})
	if v[FBehaviorMentionTime] != 86400 {
		t.Fatalf("unknown mention time = %v, want 86400", v[FBehaviorMentionTime])
	}
}

func TestAvgTweetInterval(t *testing.T) {
	e := NewExtractor()
	s := testAccount(1)
	at := simclock.Epoch
	for i := 0; i < 3; i++ {
		e.Extract(Observation{
			Tweet:  testTweet(socialnet.TweetID(i+1), 1, at.Add(time.Duration(i)*10*time.Minute), "t"),
			Sender: s,
		})
	}
	v := e.Extract(Observation{Tweet: testTweet(9, 1, at.Add(time.Hour), "t"), Sender: s})
	if v[FBehaviorAvgInterval] != 600 {
		t.Fatalf("avg interval = %v, want 600s", v[FBehaviorAvgInterval])
	}
}

func TestAvgIntervalDefaultWithoutHistory(t *testing.T) {
	e := NewExtractor()
	v := e.Extract(Observation{Tweet: testTweet(1, 1, simclock.Epoch, "t"), Sender: testAccount(1)})
	if v[FBehaviorAvgInterval] != 3600 {
		t.Fatalf("default avg interval = %v, want 3600", v[FBehaviorAvgInterval])
	}
}

func TestEnvironmentScore(t *testing.T) {
	e := NewExtractor()
	// Before any spam attribution the score is τ.
	if got := e.EnvScore([]string{"followers_count"}); got != DefaultTau {
		t.Fatalf("initial env score = %v, want τ", got)
	}
	e.UpdateEnvScore("followers_count", 0.3)
	e.UpdateEnvScore("listed_count", 0.6)
	got := e.EnvScore([]string{"followers_count", "listed_count"})
	if got != 0.6 {
		t.Fatalf("env score = %v, want max 0.6", got)
	}
	// Unknown keys fall back to τ.
	if got := e.EnvScore([]string{"something_else"}); got != DefaultTau {
		t.Fatalf("unknown-key env score = %v, want τ", got)
	}

	tw := testTweet(1, 1, simclock.Epoch, "t")
	v := e.Extract(Observation{
		Tweet: tw, Sender: testAccount(1),
		AttrKeys: []string{"listed_count"},
	})
	if v[FBehaviorEnvScore] != 0.6 {
		t.Fatalf("vector env score = %v, want 0.6", v[FBehaviorEnvScore])
	}
}

func TestSetTau(t *testing.T) {
	e := NewExtractor()
	e.SetTau(0.5)
	if got := e.EnvScore(nil); got != 0.5 {
		t.Fatalf("env score with custom τ = %v", got)
	}
}

// The core discriminative signal: spam reactions have much shorter mention
// times than organic replies when extracted from a live stream.
func TestExtractorOnSimulatedStream(t *testing.T) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 1500
	cfg.OrganicTweetsPerHour = 300
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	ex := NewExtractor()

	var spamMention, organicMention []float64
	e.Subscribe(func(tw *socialnet.Tweet) {
		sender := w.Account(tw.AuthorID)
		var receiver *socialnet.Account
		if len(tw.Mentions) > 0 {
			receiver = w.Account(tw.Mentions[0])
		}
		v := ex.Extract(Observation{Tweet: tw, Sender: sender, Receiver: receiver})
		if receiver == nil {
			return
		}
		if tw.Spam {
			spamMention = append(spamMention, v[FBehaviorMentionTime])
		} else {
			organicMention = append(organicMention, v[FBehaviorMentionTime])
		}
	})
	e.RunHours(6)

	if len(spamMention) < 30 || len(organicMention) < 30 {
		t.Fatalf("too few mention samples: spam=%d organic=%d",
			len(spamMention), len(organicMention))
	}
	median := func(xs []float64) float64 {
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		return cp[len(cp)/2]
	}
	if median(spamMention) >= median(organicMention) {
		t.Fatalf("median spam mention time %v >= organic %v",
			median(spamMention), median(organicMention))
	}
}
