package features

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// snapshotObservations builds a deterministic stream exercising every
// piece of behavioural state: repeated texts, reciprocity pairs, interval
// accumulation, env scores.
func snapshotObservations(n int) []Observation {
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		at := simclock.Epoch.Add(time.Duration(i*7) * time.Minute)
		tw := testTweet(socialnet.TweetID(i+1), socialnet.AccountID(i%5+1), at,
			fmt.Sprintf("text body %d", i%3))
		tw.Kind = socialnet.TweetKind(i%3 + 1)
		tw.Source = socialnet.Source(i%socialnet.NumSources + 1)
		o := Observation{Tweet: tw, Sender: testAccount(socialnet.AccountID(i%5 + 1))}
		if i%2 == 0 {
			o.Receiver = testAccount(socialnet.AccountID(i%3 + 10))
			o.AttrKeys = []string{"followers"}
		}
		obs = append(obs, o)
	}
	return obs
}

// TestExtractorSnapshotResumesStream: vectors extracted after a
// snapshot/restore must be bit-identical to an uninterrupted extractor's.
func TestExtractorSnapshotResumesStream(t *testing.T) {
	obs := snapshotObservations(60)
	half := len(obs) / 2

	uninterrupted := NewExtractor()
	uninterrupted.UpdateEnvScore("followers", 0.25)
	var want []Vector
	for _, o := range obs {
		want = append(want, uninterrupted.Extract(o))
	}

	first := NewExtractor()
	first.UpdateEnvScore("followers", 0.25)
	for _, o := range obs[:half] {
		first.Extract(o)
	}
	var buf bytes.Buffer
	if err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewExtractor()
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for i, o := range obs[half:] {
		got := restored.Extract(o)
		if got != want[half+i] {
			t.Fatalf("vector %d diverged after restore:\n got %v\nwant %v",
				half+i, got, want[half+i])
		}
	}
}

// TestExtractorSnapshotRejectsGarbage: a decode failure reports an error
// and leaves the extractor usable.
func TestExtractorSnapshotRejectsGarbage(t *testing.T) {
	e := NewExtractor()
	if err := e.ReadSnapshot(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	// Still usable after the failed restore.
	e.Extract(Observation{Tweet: testTweet(1, 1, simclock.Epoch, "x"), Sender: testAccount(1)})
}

// TestExtractorSnapshotEmpty round-trips a pristine extractor.
func TestExtractorSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewExtractor().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e := NewExtractor()
	if err := e.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got := e.EnvScore(nil); got != DefaultTau {
		t.Fatalf("restored tau = %v, want %v", got, DefaultTau)
	}
}
