package features

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// The extractor accumulates behavioural state in stream order, so a crash
// mid-stream loses every per-account history. WriteSnapshot/ReadSnapshot
// serialize that state for the durable checkpoint (DESIGN.md §14): an
// extractor restored from a snapshot produces bit-identical vectors for the
// remainder of the stream, because every behavioural feature is a pure
// function of the state captured here.

// historySnapshot mirrors history with exported fields for gob.
type historySnapshot struct {
	KindCounts   [3]int64
	SourceCounts [socialnet.NumSources]int64
	Total        int64
	LastTweetAt  time.Time
	IntervalSum  time.Duration
	IntervalN    int64
}

// pairSnapshot mirrors one pairs entry; the map key has unexported fields,
// so the map is flattened to a slice.
type pairSnapshot struct {
	A, B socialnet.AccountID
	N    int
}

// extractorSnapshot is the gob payload.
type extractorSnapshot struct {
	Tau       float64
	Histories map[socialnet.AccountID]historySnapshot
	Pairs     []pairSnapshot
	TextSeen  map[string]int
	EnvScores map[string]float64
	LastPost  map[socialnet.AccountID]time.Time
}

// WriteSnapshot serializes the extractor's behavioural state to w.
func (e *Extractor) WriteSnapshot(w io.Writer) error {
	snap := extractorSnapshot{
		Tau:       e.tau,
		Histories: make(map[socialnet.AccountID]historySnapshot, len(e.histories)),
		Pairs:     make([]pairSnapshot, 0, len(e.pairs)),
		TextSeen:  e.textSeen,
		EnvScores: e.envScores,
		LastPost:  e.lastPost,
	}
	for id, h := range e.histories {
		snap.Histories[id] = historySnapshot{
			KindCounts:   h.kindCounts,
			SourceCounts: h.sourceCounts,
			Total:        h.total,
			LastTweetAt:  h.lastTweetAt,
			IntervalSum:  h.intervalSum,
			IntervalN:    h.intervalN,
		}
	}
	for k, n := range e.pairs {
		snap.Pairs = append(snap.Pairs, pairSnapshot{A: k.a, B: k.b, N: n})
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("features: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot replaces the extractor's behavioural state with a snapshot
// previously written by WriteSnapshot. On decode error the extractor is
// left unchanged.
func (e *Extractor) ReadSnapshot(r io.Reader) error {
	var snap extractorSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("features: decode snapshot: %w", err)
	}
	e.tau = snap.Tau
	e.histories = make(map[socialnet.AccountID]*history, len(snap.Histories))
	for id, hs := range snap.Histories {
		e.histories[id] = &history{
			kindCounts:   hs.KindCounts,
			sourceCounts: hs.SourceCounts,
			total:        hs.Total,
			lastTweetAt:  hs.LastTweetAt,
			intervalSum:  hs.IntervalSum,
			intervalN:    hs.IntervalN,
		}
	}
	e.pairs = make(map[pairKey]int, len(snap.Pairs))
	for _, p := range snap.Pairs {
		e.pairs[pairKey{a: p.A, b: p.B}] = p.N
	}
	e.textSeen = snap.TextSeen
	if e.textSeen == nil {
		e.textSeen = make(map[string]int)
	}
	e.envScores = snap.EnvScores
	if e.envScores == nil {
		e.envScores = make(map[string]float64)
	}
	e.lastPost = snap.LastPost
	if e.lastPost == nil {
		e.lastPost = make(map[socialnet.AccountID]time.Time)
	}
	return nil
}
