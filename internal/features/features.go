// Package features implements the paper's 58-feature extraction (§IV-A):
// 16 sender-profile features, 16 receiver-profile features, 8 tweet-content
// features, and 18 user-behaviour features (reciprocity, tweet/source
// distributions, mention time, average tweet interval, and the environment
// score).
//
// The Extractor is stateful: behavioural features accumulate as tweets are
// observed in stream order, exactly as the pseudo-honeypot monitor sees
// them. One Extractor instance therefore corresponds to one monitoring
// deployment.
package features

import (
	"time"
	"unicode/utf8"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// NumFeatures is the dimensionality of a feature vector (the paper's 58).
const NumFeatures = 58

// DefaultTau is the environment-score constant used before any spam has
// been attributed to a group (the paper's τ).
const DefaultTau = 0.01

// Feature vector layout. The named indices document the mapping from the
// paper's feature list onto vector positions.
const (
	// Sender profile features (16).
	FSenderFriends = iota
	FSenderFollowers
	FSenderAgeDays
	FSenderStatuses
	FSenderStatusesPerDay
	FSenderLists
	FSenderListsPerDay
	FSenderFavouritesPerDay
	FSenderFavourites
	FSenderVerified
	FSenderDefaultImage
	FSenderScreenNameLen
	FSenderNameLen
	FSenderDescLen
	FSenderDescEmoji
	FSenderDescDigits

	// Receiver profile features (16), zero when the tweet mentions no
	// monitored receiver.
	FReceiverFriends
	FReceiverFollowers
	FReceiverAgeDays
	FReceiverStatuses
	FReceiverStatusesPerDay
	FReceiverLists
	FReceiverListsPerDay
	FReceiverFavouritesPerDay
	FReceiverFavourites
	FReceiverVerified
	FReceiverDefaultImage
	FReceiverScreenNameLen
	FReceiverNameLen
	FReceiverDescLen
	FReceiverDescEmoji
	FReceiverDescDigits

	// Tweet content features (8).
	FContentRepeated
	FContentKind
	FContentSource
	FContentHashtags
	FContentMentions
	FContentLength
	FContentEmoji
	FContentDigits

	// User behaviour features (18).
	FBehaviorReciprocity
	FBehaviorSenderTweetPct
	FBehaviorSenderRetweetPct
	FBehaviorSenderQuotePct
	FBehaviorReceiverTweetPct
	FBehaviorReceiverRetweetPct
	FBehaviorReceiverQuotePct
	FBehaviorSenderWebPct
	FBehaviorSenderMobilePct
	FBehaviorSenderThirdPct
	FBehaviorSenderOtherPct
	FBehaviorReceiverWebPct
	FBehaviorReceiverMobilePct
	FBehaviorReceiverThirdPct
	FBehaviorReceiverOtherPct
	FBehaviorMentionTime
	FBehaviorAvgInterval
	FBehaviorEnvScore
)

// Vector is one extracted feature vector.
type Vector [NumFeatures]float64

// names lists human-readable feature names, index-aligned with Vector.
var names = [NumFeatures]string{
	"sender friends count", "sender followers count", "sender age (days)",
	"sender status count", "sender average statuses", "sender list count",
	"sender average lists", "sender average favourites",
	"sender favorites count", "sender verified",
	"sender default profile image", "sender screen name length",
	"sender name length", "sender description length",
	"sender description emoji count", "sender description digits count",

	"receiver friends count", "receiver followers count",
	"receiver age (days)", "receiver status count",
	"receiver average statuses", "receiver list count",
	"receiver average lists", "receiver average favourites",
	"receiver favorites count", "receiver verified",
	"receiver default profile image", "receiver screen name length",
	"receiver name length", "receiver description length",
	"receiver description emoji count", "receiver description digits count",

	"tweet repeated", "tweet status", "tweet source", "hashtag count",
	"mention count", "content length", "content emoji count",
	"content digits count",

	"reciprocity count", "sender tweet pct", "sender retweet pct",
	"sender quote pct", "receiver tweet pct", "receiver retweet pct",
	"receiver quote pct", "sender web pct", "sender mobile pct",
	"sender third-party pct", "sender other pct", "receiver web pct",
	"receiver mobile pct", "receiver third-party pct", "receiver other pct",
	"mention time", "average tweet interval", "environment score",
}

// Name returns the human-readable name of feature index i.
func Name(i int) string {
	if i < 0 || i >= NumFeatures {
		return "unknown"
	}
	return names[i]
}

// history accumulates one account's observed behaviour.
type history struct {
	kindCounts   [3]int64 // tweet, retweet, quote
	sourceCounts [socialnet.NumSources]int64
	total        int64
	lastTweetAt  time.Time
	intervalSum  time.Duration
	intervalN    int64
}

func (h *history) observe(t *socialnet.Tweet) {
	switch t.Kind {
	case socialnet.KindTweet:
		h.kindCounts[0]++
	case socialnet.KindRetweet:
		h.kindCounts[1]++
	case socialnet.KindQuote:
		h.kindCounts[2]++
	}
	if s := int(t.Source) - 1; s >= 0 && s < socialnet.NumSources {
		h.sourceCounts[s]++
	}
	if !h.lastTweetAt.IsZero() {
		if d := t.CreatedAt.Sub(h.lastTweetAt); d >= 0 {
			h.intervalSum += d
			h.intervalN++
		}
	}
	h.lastTweetAt = t.CreatedAt
	h.total++
}

func (h *history) kindPct(i int) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return float64(h.kindCounts[i]) / float64(h.total)
}

func (h *history) sourcePct(i int) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return float64(h.sourceCounts[i]) / float64(h.total)
}

// avgIntervalSeconds returns the mean spacing of the account's observed
// tweets, or def when fewer than two tweets were seen.
func (h *history) avgIntervalSeconds(def float64) float64 {
	if h == nil || h.intervalN == 0 {
		return def
	}
	return h.intervalSum.Seconds() / float64(h.intervalN)
}

type pairKey struct {
	a, b socialnet.AccountID
}

func makePair(a, b socialnet.AccountID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a: a, b: b}
}

// Extractor converts observed tweets into feature vectors, accumulating the
// behavioural state the 18 behaviour features require.
type Extractor struct {
	tau       float64
	histories map[socialnet.AccountID]*history
	pairs     map[pairKey]int
	// textSeen counts exact tweet texts for the repeated-content feature.
	textSeen map[string]int
	// envScores holds the group likelihood score p_i per attribute key
	// (the paper's P_attr).
	envScores map[string]float64
	// lastPost tracks each account's most recent observed post for the
	// mention-time feature.
	lastPost map[socialnet.AccountID]time.Time
}

// NewExtractor creates an empty extractor with the default τ.
func NewExtractor() *Extractor {
	return &Extractor{
		tau:       DefaultTau,
		histories: make(map[socialnet.AccountID]*history),
		pairs:     make(map[pairKey]int),
		textSeen:  make(map[string]int),
		envScores: make(map[string]float64),
		lastPost:  make(map[socialnet.AccountID]time.Time),
	}
}

// SetTau overrides the environment-score default constant.
func (e *Extractor) SetTau(tau float64) { e.tau = tau }

// UpdateEnvScore records the group likelihood score p for an attribute key
// (the paper updates P_attr whenever new spam is attributed to a group).
func (e *Extractor) UpdateEnvScore(attrKey string, p float64) {
	e.envScores[attrKey] = p
}

// EnvScore returns the current environment score for a set of attribute
// keys: the maximum group likelihood among them, or τ when none is known.
func (e *Extractor) EnvScore(attrKeys []string) float64 {
	best := 0.0
	found := false
	for _, k := range attrKeys {
		if p, ok := e.envScores[k]; ok {
			found = true
			if p > best {
				best = p
			}
		}
	}
	if !found {
		return e.tau
	}
	return best
}

// Observation is one collected tweet with the profile context the monitor
// captured at collection time.
type Observation struct {
	Tweet *socialnet.Tweet
	// Sender is the author's profile snapshot.
	Sender *socialnet.Account
	// Receiver is the mentioned pseudo-honeypot account's profile, nil
	// for tweets that mention no monitored account.
	Receiver *socialnet.Account
	// AttrKeys are the selector keys of the pseudo-honeypot group(s) that
	// captured the tweet, for the environment-score feature.
	AttrKeys []string
	// Trace, when non-nil, receives a "feature_extract" span covering the
	// extraction.
	Trace *trace.Trace
}

// Extract converts one observation into a feature vector and folds the
// observation into the behavioural state. Observations must be fed in
// stream (chronological) order.
func (e *Extractor) Extract(o Observation) Vector {
	sp := o.Trace.StartSpan("feature_extract")
	defer sp.End()
	v := Stateless(o)
	e.CompleteStateful(o, &v)
	return v
}

// Stateless computes the order-independent portion of the feature vector:
// the sender/receiver profile features and every content feature except
// repeated-content. It reads only the observation's frozen snapshots — no
// extractor state — so shard workers may call it concurrently and out of
// stream order; (*Extractor).CompleteStateful fills in the rest serially.
func Stateless(o Observation) Vector {
	var v Vector
	t := o.Tweet
	now := t.CreatedAt

	if o.Sender != nil {
		fillProfile(&v, FSenderFriends, o.Sender, now)
	}
	if o.Receiver != nil {
		fillProfile(&v, FReceiverFriends, o.Receiver, now)
	}

	v[FContentKind] = float64(t.Kind)
	v[FContentSource] = float64(t.Source)
	v[FContentHashtags] = float64(len(t.Hashtags))
	v[FContentMentions] = float64(len(t.Mentions))
	v[FContentLength] = float64(utf8.RuneCountInString(t.Text))
	v[FContentEmoji] = float64(textutil.CountEmoji(t.Text))
	v[FContentDigits] = float64(textutil.CountDigits(t.Text))
	return v
}

// CompleteStateful fills the stateful features — repeated-content and the
// 18 behaviour features — into a vector begun by Stateless, then folds the
// observation into the behavioural state. Completions must run in stream
// (chronological) order; Extract is the single-call composition.
func (e *Extractor) CompleteStateful(o Observation, v *Vector) {
	t := o.Tweet

	e.textSeen[t.Text]++
	if e.textSeen[t.Text] > 1 {
		v[FContentRepeated] = 1
	}

	// Behavioural features use the state *before* this observation, then
	// the observation is folded in.
	var senderHist, receiverHist *history
	if o.Sender != nil {
		senderHist = e.histories[o.Sender.ID]
	}
	if o.Receiver != nil {
		receiverHist = e.histories[o.Receiver.ID]
	}
	if o.Sender != nil && o.Receiver != nil {
		v[FBehaviorReciprocity] = float64(e.pairs[makePair(o.Sender.ID, o.Receiver.ID)])
	}
	v[FBehaviorSenderTweetPct] = senderHist.kindPct(0)
	v[FBehaviorSenderRetweetPct] = senderHist.kindPct(1)
	v[FBehaviorSenderQuotePct] = senderHist.kindPct(2)
	v[FBehaviorReceiverTweetPct] = receiverHist.kindPct(0)
	v[FBehaviorReceiverRetweetPct] = receiverHist.kindPct(1)
	v[FBehaviorReceiverQuotePct] = receiverHist.kindPct(2)
	for i := 0; i < socialnet.NumSources; i++ {
		v[FBehaviorSenderWebPct+i] = senderHist.sourcePct(i)
		v[FBehaviorReceiverWebPct+i] = receiverHist.sourcePct(i)
	}
	v[FBehaviorMentionTime] = e.mentionTimeSeconds(o)
	v[FBehaviorAvgInterval] = senderHist.avgIntervalSeconds(3600)
	v[FBehaviorEnvScore] = e.EnvScore(o.AttrKeys)

	e.fold(o)
}

// mentionTimeSeconds computes f_m = T_mention − T_post: the gap between the
// receiver's last observed post and this mention. Unknown gaps report one
// day, the paper's effective "slow reaction" ceiling.
func (e *Extractor) mentionTimeSeconds(o Observation) float64 {
	const unknown = 86400.0
	if o.Receiver == nil {
		return unknown
	}
	post, ok := e.lastPost[o.Receiver.ID]
	if !ok {
		// Fall back to the profile's public timeline information.
		post = o.Receiver.LastPostAt()
	}
	if post.IsZero() {
		return unknown
	}
	d := o.Tweet.CreatedAt.Sub(post).Seconds()
	if d < 0 {
		return 0
	}
	if d > unknown {
		return unknown
	}
	return d
}

// fold updates behavioural state with the observation.
func (e *Extractor) fold(o Observation) {
	t := o.Tweet
	if o.Sender != nil {
		h := e.histories[o.Sender.ID]
		if h == nil {
			h = &history{}
			e.histories[o.Sender.ID] = h
		}
		h.observe(t)
		e.lastPost[o.Sender.ID] = t.CreatedAt
		if o.Receiver != nil {
			e.pairs[makePair(o.Sender.ID, o.Receiver.ID)]++
		}
	}
}

// fillProfile writes the 16 profile features of a starting at index base.
func fillProfile(v *Vector, base int, a *socialnet.Account, now time.Time) {
	v[base+0] = float64(a.FriendsCount)
	v[base+1] = float64(a.FollowersCount)
	v[base+2] = a.AgeDays(now)
	v[base+3] = float64(a.StatusesCount)
	v[base+4] = a.StatusesPerDay(now)
	v[base+5] = float64(a.ListedCount)
	v[base+6] = a.ListsPerDay(now)
	v[base+7] = a.FavouritesPerDay(now)
	v[base+8] = float64(a.FavouritesCount)
	v[base+9] = boolToF(a.Verified)
	v[base+10] = boolToF(a.DefaultProfileImage)
	v[base+11] = float64(utf8.RuneCountInString(a.ScreenName))
	v[base+12] = float64(utf8.RuneCountInString(a.Name))
	v[base+13] = float64(utf8.RuneCountInString(a.Description))
	v[base+14] = float64(textutil.CountEmoji(a.Description))
	v[base+15] = float64(textutil.CountDigits(a.Description))
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
