package features

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// Property: every extracted vector is finite-valued and the percentage
// features stay in [0, 1].
func TestVectorBoundsProperty(t *testing.T) {
	e := NewExtractor()
	sender := testAccount(1)
	receiver := testAccount(2)
	at := simclock.Epoch
	seq := socialnet.TweetID(0)

	prop := func(kindByte, srcByte uint8, text string, mention bool) bool {
		seq++
		at = at.Add(time.Minute)
		tw := &socialnet.Tweet{
			ID:        seq,
			AuthorID:  1,
			CreatedAt: at,
			Kind:      socialnet.TweetKind(int(kindByte)%3 + 1),
			Source:    socialnet.Source(int(srcByte)%socialnet.NumSources + 1),
			Text:      text,
		}
		o := Observation{Tweet: tw, Sender: sender}
		if mention {
			tw.Mentions = []socialnet.AccountID{2}
			o.Receiver = receiver
		}
		v := e.Extract(o)
		pctIdx := []int{
			FBehaviorSenderTweetPct, FBehaviorSenderRetweetPct,
			FBehaviorSenderQuotePct, FBehaviorReceiverTweetPct,
			FBehaviorReceiverRetweetPct, FBehaviorReceiverQuotePct,
			FBehaviorSenderWebPct, FBehaviorSenderMobilePct,
			FBehaviorSenderThirdPct, FBehaviorSenderOtherPct,
			FBehaviorReceiverWebPct, FBehaviorReceiverMobilePct,
			FBehaviorReceiverThirdPct, FBehaviorReceiverOtherPct,
		}
		for _, i := range pctIdx {
			if v[i] < 0 || v[i] > 1 {
				return false
			}
		}
		for i := range v {
			if v[i] != v[i] { // NaN
				return false
			}
		}
		return v[FBehaviorMentionTime] >= 0 && v[FBehaviorMentionTime] <= 86400
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sender's kind-percentage features always sum to ≤ 1 and,
// once the sender has history, to exactly 1.
func TestKindPctSumProperty(t *testing.T) {
	e := NewExtractor()
	sender := testAccount(1)
	at := simclock.Epoch
	for i := 1; i <= 50; i++ {
		at = at.Add(time.Minute)
		tw := &socialnet.Tweet{
			ID: socialnet.TweetID(i), AuthorID: 1, CreatedAt: at,
			Kind:   socialnet.TweetKind(i%3 + 1),
			Source: socialnet.SourceWeb,
			Text:   "t",
		}
		v := e.Extract(Observation{Tweet: tw, Sender: sender})
		sum := v[FBehaviorSenderTweetPct] + v[FBehaviorSenderRetweetPct] +
			v[FBehaviorSenderQuotePct]
		if i == 1 {
			if sum != 0 {
				t.Fatalf("first observation has history sum %v", sum)
			}
			continue
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("observation %d kind pct sum %v", i, sum)
		}
	}
}

func TestExtractorIndependentPerInstance(t *testing.T) {
	a, b := NewExtractor(), NewExtractor()
	sender := testAccount(1)
	tw := testTweet(1, 1, simclock.Epoch, "same text")
	a.Extract(Observation{Tweet: tw, Sender: sender})
	// Extractor b never saw the text: not repeated for it.
	v := b.Extract(Observation{Tweet: testTweet(2, 1, simclock.Epoch, "same text"), Sender: sender})
	if v[FContentRepeated] != 0 {
		t.Fatal("extractors share repeated-text state")
	}
}

func TestMentionTimeClampedToDay(t *testing.T) {
	e := NewExtractor()
	honeypot := testAccount(2)
	// Post long ago.
	post := testTweet(1, 2, simclock.Epoch, "old post")
	e.Extract(Observation{Tweet: post, Sender: honeypot})
	// Mention arrives a week later.
	mention := testTweet(2, 3, simclock.Epoch.Add(7*24*time.Hour), "@x hi")
	mention.Mentions = []socialnet.AccountID{2}
	v := e.Extract(Observation{Tweet: mention, Sender: testAccount(3), Receiver: honeypot})
	if v[FBehaviorMentionTime] != 86400 {
		t.Fatalf("week-old mention time = %v, want clamped 86400", v[FBehaviorMentionTime])
	}
}

func TestNegativeMentionTimeClampedToZero(t *testing.T) {
	e := NewExtractor()
	honeypot := testAccount(2)
	post := testTweet(1, 2, simclock.Epoch.Add(time.Hour), "future post")
	e.Extract(Observation{Tweet: post, Sender: honeypot})
	mention := testTweet(2, 3, simclock.Epoch, "@x hi") // earlier than post
	mention.Mentions = []socialnet.AccountID{2}
	v := e.Extract(Observation{Tweet: mention, Sender: testAccount(3), Receiver: honeypot})
	if v[FBehaviorMentionTime] != 0 {
		t.Fatalf("negative mention time = %v, want 0", v[FBehaviorMentionTime])
	}
}
