# Developer entry points. `make check` is the gate CI runs: vet, build,
# the full test suite, a race-detector pass over every package the
# parallel execution layer or the metrics hot paths touch, and a coverage
# gate on the metrics registry.

GO ?= go

RACE_PKGS := ./internal/parallel/ \
	./internal/pipeline/ \
	./internal/ml/... \
	./internal/label/ \
	./internal/core/ \
	./internal/imagehash/ \
	./internal/metrics/ \
	./internal/trace/ \
	./internal/twitterapi/ \
	./internal/store/ \
	./internal/shard/ \
	./internal/obs/ \
	./internal/source/ \
	.

METRICS_COVER_MIN := 90
TRACE_COVER_MIN := 90
STORE_COVER_MIN := 90
OBS_COVER_MIN := 90
SOURCE_COVER_MIN := 90

.PHONY: check vet vulncheck build test race bench bench-e2e bench-e2e-check bench-store bench-store-check bench-shard bench-shard-check bench-ingest bench-ingest-check cover-metrics cover-trace cover-store cover-obs cover-source

check: vet vulncheck build test race cover-metrics cover-trace cover-store cover-obs cover-source

vet:
	$(GO) vet ./...

# vulncheck scans dependencies and call graphs with govulncheck when the
# tool is installed; environments without it (or without network access to
# the vulnerability database) skip the scan rather than fail the gate.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || exit 1; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# cover-metrics gates internal/metrics at >= $(METRICS_COVER_MIN)%
# statement coverage: the registry sits on every hot path, so untested
# branches there are untested everywhere.
cover-metrics:
	@$(GO) test -coverprofile=.metrics.cover ./internal/metrics/ > /dev/null
	@$(GO) tool cover -func=.metrics.cover | awk -v min=$(METRICS_COVER_MIN) \
		'/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < min) { printf "FAIL: internal/metrics coverage %s%% < %d%% gate\n", $$3, min; exit 1 } \
		else printf "internal/metrics coverage %s%% (gate %d%%)\n", $$3, min }'
	@rm -f .metrics.cover

# cover-trace gates internal/trace at >= $(TRACE_COVER_MIN)% statement
# coverage: the span tracer is woven through every pipeline stage, so a
# regression there silently corrupts latency attribution everywhere.
cover-trace:
	@$(GO) test -coverprofile=.trace.cover ./internal/trace/ > /dev/null
	@$(GO) tool cover -func=.trace.cover | awk -v min=$(TRACE_COVER_MIN) \
		'/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < min) { printf "FAIL: internal/trace coverage %s%% < %d%% gate\n", $$3, min; exit 1 } \
		else printf "internal/trace coverage %s%% (gate %d%%)\n", $$3, min }'
	@rm -f .trace.cover

# cover-obs gates internal/obs at >= $(OBS_COVER_MIN)% statement
# coverage: the federation merge and the watchdog are what operators see
# of a sharded fleet — an untested branch there is a blind spot in the
# one deployment mode that matters at scale.
cover-obs:
	@$(GO) test -coverprofile=.obs.cover ./internal/obs/ > /dev/null
	@$(GO) tool cover -func=.obs.cover | awk -v min=$(OBS_COVER_MIN) \
		'/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < min) { printf "FAIL: internal/obs coverage %s%% < %d%% gate\n", $$3, min; exit 1 } \
		else printf "internal/obs coverage %s%% (gate %d%%)\n", $$3, min }'
	@rm -f .obs.cover

# bench runs the ML training and parallel-layer benchmarks, then
# regenerates the committed BENCH_ml.json baseline via cmd/benchreport.
# speedup-vs-reference compares the presorted-column split engine against
# the legacy per-node-sort scan (algorithmic win, visible on any core
# count); speedup-vs-1worker compares the default worker count against a
# single-worker fit (expect ~1.0 on a single-core machine).
bench:
	$(GO) test -run NONE -bench 'TreeFit|ForestFit|BoostFit|CrossValidate|DetectorClassify' \
		./internal/ml/tree/ ./internal/ml/forest/ ./internal/ml/boost/ \
		./internal/ml/ ./internal/core/
	$(GO) test -run NONE -bench 'ObsDisabled' ./internal/obs/
	$(GO) run ./cmd/benchreport -mlbench BENCH_ml.json
	$(GO) run ./cmd/benchreport -e2ebench BENCH_e2e.json
	$(GO) run ./cmd/benchreport -storebench BENCH_store.json
	$(GO) run ./cmd/benchreport -shardbench BENCH_shard.json
	$(GO) run ./cmd/benchreport -ingestbench BENCH_ingest.json

# bench-e2e regenerates only the committed end-to-end hot-path baseline
# (NDJSON ingest -> features -> classification, tweets/sec and
# allocs/tweet at workers 1/2/8).
bench-e2e:
	$(GO) run ./cmd/benchreport -e2ebench BENCH_e2e.json

# bench-e2e-check measures the hot path fresh and fails when optimized
# tweets/sec regressed more than 10% against the committed baseline.
# Set PH_SKIP_E2E_CHECK=1 to skip on shared or throttled machines.
bench-e2e-check:
	$(GO) run ./cmd/benchreport -e2echeck BENCH_e2e.json

# cover-store gates internal/store at >= $(STORE_COVER_MIN)% statement
# coverage: the WAL and checkpoint machinery is what stands between a
# crash and silent data loss, so untested recovery branches are latent
# divergence bugs.
cover-store:
	@$(GO) test -coverprofile=.store.cover ./internal/store/ > /dev/null
	@$(GO) tool cover -func=.store.cover | awk -v min=$(STORE_COVER_MIN) \
		'/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < min) { printf "FAIL: internal/store coverage %s%% < %d%% gate\n", $$3, min; exit 1 } \
		else printf "internal/store coverage %s%% (gate %d%%)\n", $$3, min }'
	@rm -f .store.cover

# bench-store regenerates the committed durable-store baseline: WAL
# append throughput per group-commit setting, recovery time for a
# 30k-record log, and checkpoint write latency.
bench-store:
	$(GO) run ./cmd/benchreport -storebench BENCH_store.json

# bench-store-check measures the durability layer fresh and fails when
# WAL appends at the largest group-commit setting would claim more than
# 10% of the serving pipeline's per-tweet budget, or append/recovery
# throughput regressed >25% against the committed baseline.
# Set PH_SKIP_STORE_CHECK=1 to skip on shared or throttled machines.
bench-store-check:
	$(GO) run ./cmd/benchreport -storecheck BENCH_store.json

# bench-shard regenerates the committed shard-scaling baseline: capture
# throughput of the in-process sharded fanout at 1/2/4/8 shards over a
# fixed pre-generated capture workload.
bench-shard:
	$(GO) run ./cmd/benchreport -shardbench BENCH_shard.json

# bench-shard-check measures the scaling curve fresh and fails when the
# 4-shard speedup misses the core-count-tiered floor (2.5x on >= 8 cores,
# degrading to a 0.5x sanity floor on a single core — a small machine
# cannot reproduce a big runner's parallelism).
# Set PH_SKIP_SHARD_CHECK=1 to skip on shared or throttled machines.
bench-shard-check:
	$(GO) run ./cmd/benchreport -shardcheck BENCH_shard.json

# cover-source gates internal/source at >= $(SOURCE_COVER_MIN)% statement
# coverage: the ingestion layer decides what the whole pipeline sees, so
# an untested delivery or merge branch is a silent stream corruption.
cover-source:
	@$(GO) test -coverprofile=.source.cover ./internal/source/ > /dev/null
	@$(GO) tool cover -func=.source.cover | awk -v min=$(SOURCE_COVER_MIN) \
		'/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < min) { printf "FAIL: internal/source coverage %s%% < %d%% gate\n", $$3, min; exit 1 } \
		else printf "internal/source coverage %s%% (gate %d%%)\n", $$3, min }'
	@rm -f .source.cover

# bench-ingest regenerates the committed source-ingest baseline: posts/sec
# through the Source interface onto the monitor match path, for a direct
# source, a single-child mux (pure machinery overhead), and a two-child
# merge (namespacing + merge cost).
bench-ingest:
	$(GO) run ./cmd/benchreport -ingestbench BENCH_ingest.json

# bench-ingest-check measures ingest overhead fresh and fails when the
# single-child mux costs more than 5% of direct-source throughput.
# Set PH_SKIP_INGEST_CHECK=1 to skip on shared or throttled machines.
bench-ingest-check:
	$(GO) run ./cmd/benchreport -ingestcheck BENCH_ingest.json
