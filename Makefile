# Developer entry points. `make check` is the gate CI runs: vet, build,
# the full test suite, and a race-detector pass over every package the
# parallel execution layer touches.

GO ?= go

RACE_PKGS := ./internal/parallel/ \
	./internal/ml/... \
	./internal/label/ \
	./internal/core/ \
	./internal/imagehash/

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# bench runs the parallel-layer speedup benchmarks; the
# speedup-vs-1worker metric compares the default worker count against a
# single-worker baseline (expect ~1.0 on a single-core machine).
bench:
	$(GO) test -run NONE -bench 'ForestFit|CrossValidate|DetectorClassify' \
		./internal/ml/forest/ ./internal/ml/ ./internal/core/
