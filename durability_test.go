package pseudohoneypot

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store/fstest"
)

// durableConfig is the golden reference configuration (seed 1, 120 random
// nodes, 16-tweet micro-batches — see goldenStreamingFingerprint) with the
// durable store bound to b. Crash-equivalence compares every recovered run
// against that same pinned fingerprint: recovery is correct exactly when a
// crashed-and-restarted run is indistinguishable from one that never died.
func durableConfig(b StoreBackend, syncEvery int) SnifferConfig {
	return SnifferConfig{
		Specs: RandomSpec(120),
		Seed:  1,
		Stream: StreamConfig{
			Enabled:       true,
			BatchSize:     16,
			FlushInterval: time.Millisecond,
		},
		Durability: DurabilityConfig{Backend: b, SyncEvery: syncEvery},
	}
}

// crashSniffer kills a durable sniffer the way kill -9 would: detach from
// the engine, let in-flight stage work land in the store's buffers, then
// discard everything unsynced — keeping tornBytes of a half-flushed tail —
// and abandon the directory lock. The store is deliberately NOT closed: a
// dead process never gets to flush, so anything still buffered must be
// recovered by re-simulation, not by a graceful shutdown the real failure
// would never have run.
func crashSniffer(s *Sniffer, b *fstest.Backend, tornBytes int) {
	s.detach()
	s.ingest.Close()
	s.runner.Wait()
	b.Crash(tornBytes)
}

// restartAndFinish is the second half of every crash scenario: a fresh
// simulation at the same seed against the same backend, full re-run,
// detection. It asserts that recovery actually found durable state.
func restartAndFinish(t *testing.T, cfg SnifferConfig, hours int) *DetectionResult {
	t.Helper()
	sim := testSimulation(t)
	sn, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer sn.Close()
	rec := sn.Recovery()
	if rec == nil {
		t.Fatal("restarted sniffer reports no recovery state")
	}
	if rec.Checkpoint == nil && len(rec.Records) == 0 {
		t.Fatal("recovery found nothing durable")
	}
	sim.RunHours(hours)
	res, err := sn.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDurableStreamingMatchesGolden: the WAL and hourly checkpoints must
// be behaviour-neutral — an uninterrupted durable run reproduces the
// pinned streaming fingerprint bit for bit, and leaves segments plus
// checkpoints on the backend.
func TestDurableStreamingMatchesGolden(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	b := fstest.New()
	res := runDetection(t, durableConfig(b, 1), 6)
	if got := fingerprintResult(res); got != goldenStreamingFingerprint {
		t.Fatalf("durable run drifted from golden:\n got  %s\n want %s",
			got, goldenStreamingFingerprint)
	}
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs, ckpts int
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			segs++
		}
		if strings.HasPrefix(n, "ckpt-") {
			ckpts++
		}
	}
	if segs == 0 || ckpts == 0 {
		t.Fatalf("durable run left %d segments and %d checkpoints, want both > 0 (%v)",
			segs, ckpts, names)
	}
}

// TestDurableDirBackendGolden runs the same property on the real local-disk
// backend — the path the daemons use.
func TestDurableDirBackendGolden(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	cfg := durableConfig(nil, 4)
	cfg.Durability = DurabilityConfig{Dir: t.TempDir(), SyncEvery: 4}
	res := runDetection(t, cfg, 6)
	if got := fingerprintResult(res); got != goldenStreamingFingerprint {
		t.Fatalf("dir-backed run drifted from golden:\n got  %s\n want %s",
			got, goldenStreamingFingerprint)
	}
}

// TestCrashRecoveryEquivalence is the fault-injection harness: kill a
// durable sniffer at varied points — different crash hours, group-commit
// settings, torn half-flushed tails, an injected write fault mid-WAL-append,
// a failed fsync — restart against the surviving bytes, re-run, and require
// the recovered run to converge on the exact golden fingerprint. Worker
// counts 1, 2, and 8 cover the stage-parallel extraction paths.
func TestCrashRecoveryEquivalence(t *testing.T) {
	type scenario struct {
		name      string
		syncEvery int
		crashHour int
		torn      int
		fault     func(*fstest.Backend)
	}
	// writeFault tears a WAL flush a couple of writes from now: the append
	// path latches the broken segment, retries into a rotated one, and the
	// crash then discards the torn remains.
	writeFault := func(b *fstest.Backend) {
		b.FailAfter(fstest.OpWrite, b.Ops(fstest.OpWrite)+2)
	}
	// syncFault fails an fsync after its flush landed, leaving a fully
	// written but unsynced tail for Crash to tear.
	syncFault := func(b *fstest.Backend) {
		b.FailAfter(fstest.OpSync, b.Ops(fstest.OpSync)+3)
	}
	all := []scenario{
		{name: "sync-every-append", syncEvery: 1, crashHour: 2},
		{name: "group-commit-torn", syncEvery: 8, crashHour: 3, torn: 5},
		{name: "mid-append-write-fault", syncEvery: 4, crashHour: 3, torn: 3, fault: writeFault},
		{name: "fsync-fault-torn-tail", syncEvery: 4, crashHour: 4, torn: 11, fault: syncFault},
		{name: "late-crash", syncEvery: 1, crashHour: 5},
	}
	perWorker := map[string][]scenario{
		"1": {all[0], all[2]},
		"2": all,
		"8": {all[1], all[2]},
	}
	for _, workers := range []string{"1", "2", "8"} {
		t.Run("workers="+workers, func(t *testing.T) {
			t.Setenv(parallel.EnvWorkers, workers)
			for _, sc := range perWorker[workers] {
				t.Run(sc.name, func(t *testing.T) {
					b := fstest.New()
					cfg := durableConfig(b, sc.syncEvery)
					sim := testSimulation(t)
					sn, err := NewSniffer(sim, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if sc.fault != nil {
						sc.fault(b)
					}
					sim.RunHours(sc.crashHour)
					crashSniffer(sn, b, sc.torn)

					res := restartAndFinish(t, cfg, 6)
					if got := fingerprintResult(res); got != goldenStreamingFingerprint {
						t.Fatalf("recovered run diverged from golden:\n got  %s\n want %s",
							got, goldenStreamingFingerprint)
					}
				})
			}
		})
	}
}

// TestCrashRecoveryDoubleCrash: a recovered run is itself durable — crash
// it again partway through its re-run, restart a second time, and the
// final run still converges on the golden fingerprint.
func TestCrashRecoveryDoubleCrash(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	b := fstest.New()
	cfg := durableConfig(b, 4)

	sim := testSimulation(t)
	sn, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunHours(2)
	crashSniffer(sn, b, 3)

	sim2 := testSimulation(t)
	sn2, err := NewSniffer(sim2, cfg)
	if err != nil {
		t.Fatalf("first restart: %v", err)
	}
	sim2.RunHours(4)
	crashSniffer(sn2, b, 0)

	res := restartAndFinish(t, cfg, 6)
	if got := fingerprintResult(res); got != goldenStreamingFingerprint {
		t.Fatalf("twice-crashed run diverged from golden:\n got  %s\n want %s",
			got, goldenStreamingFingerprint)
	}
}

// TestDurableCleanRestartResumes: a graceful Close and reopen against the
// same directory resumes without double-counting — the restarted run lands
// on the golden fingerprint, and recovery reports both a checkpoint and a
// replayed WAL tail.
func TestDurableCleanRestartResumes(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	cfg := durableConfig(nil, 1)
	cfg.Durability = DurabilityConfig{Dir: t.TempDir()}

	sim := testSimulation(t)
	sn, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunHours(3)
	sn.Close()

	sim2 := testSimulation(t)
	sn2, err := NewSniffer(sim2, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sn2.Close()
	rec := sn2.Recovery()
	if rec == nil || rec.Checkpoint == nil {
		t.Fatal("clean restart recovered no checkpoint")
	}
	if len(rec.Records) == 0 {
		t.Fatal("clean restart replayed no WAL tail past the checkpoint")
	}
	sim2.RunHours(6)
	res, err := sn2.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintResult(res); got != goldenStreamingFingerprint {
		t.Fatalf("resumed run diverged from golden:\n got  %s\n want %s",
			got, goldenStreamingFingerprint)
	}
}

// TestCrashRecoveryOnlineDetector: the online detector's sliding window and
// retrain schedule survive a crash — after recovery and re-run they match
// an uninterrupted run's exactly.
func TestCrashRecoveryOnlineDetector(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")

	uninterrupted, err := NewOnlineDetector(ClassifierDT, 400, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := durableConfig(fstest.New(), 1)
	cfgA.Online = uninterrupted
	runDetection(t, cfgA, 6)

	crashed, err := NewOnlineDetector(ClassifierDT, 400, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := fstest.New()
	cfgB := durableConfig(b, 1)
	cfgB.Online = crashed
	sim := testSimulation(t)
	sn, err := NewSniffer(sim, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunHours(3)
	crashSniffer(sn, b, 0)

	recovered, err := NewOnlineDetector(ClassifierDT, 400, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgB.Online = recovered
	restartAndFinish(t, cfgB, 6)

	if recovered.WindowSize() != uninterrupted.WindowSize() {
		t.Fatalf("recovered window = %d, uninterrupted = %d",
			recovered.WindowSize(), uninterrupted.WindowSize())
	}
	if recovered.Retrains() != uninterrupted.Retrains() {
		t.Fatalf("recovered retrains = %d, uninterrupted = %d",
			recovered.Retrains(), uninterrupted.Retrains())
	}
}

// TestDurableStoreSingleOwner: the directory lock makes a second live
// sniffer on the same store fail fast instead of interleaving two WALs.
func TestDurableStoreSingleOwner(t *testing.T) {
	b := fstest.New()
	cfg := durableConfig(b, 1)
	sim := testSimulation(t)
	sn, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if _, err := NewSniffer(testSimulation(t), cfg); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("second owner error = %v, want ErrLocked", err)
	}
}

// TestDurableMetaMismatch: reopening a store under a different
// configuration fingerprint (here, another seed) must refuse rather than
// replay history that means something else.
func TestDurableMetaMismatch(t *testing.T) {
	b := fstest.New()
	cfg := durableConfig(b, 1)
	sim := testSimulation(t)
	sn, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunHours(1)
	sn.Close()

	cfg2 := cfg
	cfg2.Seed = 2
	if _, err := NewSniffer(testSimulation(t), cfg2); !errors.Is(err, store.ErrMetaMismatch) {
		t.Fatalf("mismatched reopen error = %v, want ErrMetaMismatch", err)
	}
}

// TestDurabilityRequiresStreaming: durability depends on the stage graph's
// ordering guarantees; enabling it on the batch path is a config error.
func TestDurabilityRequiresStreaming(t *testing.T) {
	_, err := NewSniffer(testSimulation(t), SnifferConfig{
		Specs:      RandomSpec(8),
		Seed:       1,
		Durability: DurabilityConfig{Backend: fstest.New()},
	})
	if err == nil {
		t.Fatal("durability without streaming accepted")
	}
}
