package pseudohoneypot

import (
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/shard"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// TestMain lets proc-mode shard coordinators spawn workers by re-executing
// this test binary: a process started with the worker env marker serves
// the epoch RPC instead of running tests.
func TestMain(m *testing.M) {
	shard.MaybeWorker()
	os.Exit(m.Run())
}

// shardGoldenConfig is the reference configuration of the pinned streaming
// fingerprint (goldenStreamingFingerprint in streaming_test.go), extended
// with a shard topology. Tracing and an isolated metrics registry are on:
// the observability layer — epoch trace ids on the wire, stitched worker
// spans, federated counters — must be invisible in every fingerprinted
// observable.
func shardGoldenConfig(shards int, mode string) SnifferConfig {
	return SnifferConfig{
		Specs: RandomSpec(120),
		Seed:  1,
		Stream: StreamConfig{
			Enabled:       true,
			BatchSize:     16,
			FlushInterval: time.Millisecond,
		},
		Shards:    shards,
		ShardMode: mode,
		Metrics:   NewMetricsRegistry(),
		Tracer:    trace.New(trace.Config{Enabled: true, Buffer: 64}),
	}
}

// runShardedDetection mirrors runDetection but drives the run through
// Sniffer.RunHours, which proc mode requires (the coordinator flushes one
// epoch to the worker fleet per simulated hour).
func runShardedDetection(t *testing.T, cfg SnifferConfig, hours int) *DetectionResult {
	t.Helper()
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if err := sniffer.RunHours(hours); err != nil {
		t.Fatal(err)
	}
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedDeterminism is the tentpole's acceptance property: for shard
// counts {1,2,4,8} in both isolation modes, the sharded run's output —
// captures, labels, PGE tables, detection result — is bit-identical to
// the unsharded streaming run's pinned golden fingerprint at the same
// seed. The consistent-hash partition, per-shard pipelines, and merge
// must be invisible in every observable.
func TestShardedDeterminism(t *testing.T) {
	for _, mode := range []string{"inproc", "proc"} {
		for _, shards := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("mode=%s/shards=%d", mode, shards), func(t *testing.T) {
				if testing.Short() && mode == "proc" && shards > 2 {
					t.Skip("short mode")
				}
				t.Setenv(parallel.EnvWorkers, "2")
				res := runShardedDetection(t, shardGoldenConfig(shards, mode), 6)
				if got := fingerprintResult(res); got != goldenStreamingFingerprint {
					t.Fatalf("mode=%s shards=%d fingerprint %s, golden %s",
						mode, shards, got, goldenStreamingFingerprint)
				}
			})
		}
	}
}
