// Package pseudohoneypot is a from-scratch Go reproduction of
// "Pseudo-honeypot: Toward Efficient and Scalable Spam Sniffer"
// (Zhang, Zhang, Yuan, Tzeng — DSN 2019).
//
// A pseudo-honeypot harnesses existing normal social-network accounts
// whose attributes attract spammers, passively monitors the mention
// traffic crossing them, and feeds a machine-learning spam detector. This
// module implements the complete system — attribute-based node selection,
// hourly-rotating monitoring, 58-feature extraction, the four-stage
// ground-truth labeling pipeline, and five classifier families — together
// with the substrate the paper's evaluation requires: a synthetic
// Twitter-scale social world with spam campaigns, an HTTP emulation of the
// Streaming/REST APIs, and an experiments harness that regenerates every
// table and figure of the paper's evaluation section.
//
// Quick start:
//
//	sim, err := pseudohoneypot.NewSimulation(pseudohoneypot.DefaultConfig())
//	if err != nil { ... }
//	sniffer, err := pseudohoneypot.NewSniffer(sim, pseudohoneypot.SnifferConfig{
//		Specs: pseudohoneypot.StandardSpecs(2),
//	})
//	if err != nil { ... }
//	sim.RunHours(24)
//	result, err := sniffer.DetectAll()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every table and figure.
package pseudohoneypot
