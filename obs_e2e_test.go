package pseudohoneypot

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/obs"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// counterTotal sums a family's sample values across every sample whose
// labels include all of want.
func counterTotal(fams []metrics.FamilySnapshot, name string, want map[string]string) float64 {
	total := 0.0
	for _, fam := range fams {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			have := map[string]string{}
			for _, l := range s.Labels {
				have[l.Name] = l.Value
			}
			match := true
			for k, v := range want {
				if have[k] != v {
					match = false
					break
				}
			}
			if match {
				total += s.Value
			}
		}
	}
	return total
}

// TestProcFederationEndToEnd drives real worker subprocesses and checks
// the whole observability tentpole at once: the coordinator scrapes the
// workers' loopback /metrics, the merged rollup is internally consistent
// across the process boundary (worker-side pipeline counters equal the
// coordinator's wire counters), fleet totals equal an unsharded run's,
// the rollup re-federates to a fixpoint, the aggregated health view is
// green, and /debug/traces holds stitched cross-process epoch trees.
func TestProcFederationEndToEnd(t *testing.T) {
	const shards, hours = 2, 4

	reg := NewMetricsRegistry()
	tracer := trace.New(trace.Config{Enabled: true, Buffer: 128})
	cfg := shardGoldenConfig(shards, "proc")
	cfg.Metrics = reg
	cfg.Tracer = tracer

	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if err := sniffer.RunHours(hours); err != nil {
		t.Fatal(err)
	}

	urls := sniffer.ShardAdminURLs()
	if len(urls) != shards {
		t.Fatalf("ShardAdminURLs = %v, want %d workers", urls, shards)
	}
	for i, u := range urls {
		if !strings.HasPrefix(u, "http://") {
			t.Fatalf("worker %d admin URL malformed: %q", i+1, u)
		}
	}

	// Workers expose per-process health on the same loopback server that
	// speaks the epoch wire.
	resp, err := http.Get(urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker /healthz status %d", resp.StatusCode)
	}

	fed := obs.NewFederator(obs.FederatorConfig{
		Local: reg,
		Targets: func() []obs.Target {
			ts := make([]obs.Target, 0, shards)
			for i, u := range sniffer.ShardAdminURLs() {
				ts = append(ts, obs.Target{Name: strconv.Itoa(i + 1), URL: u})
			}
			return ts
		},
	})
	if n := fed.ScrapeOnce(context.Background()); n != shards {
		t.Fatalf("scraped %d workers, want %d", n, shards)
	}
	rollup := fed.Rollup()

	// Cross-process consistency: every NDJSON line the coordinator sent a
	// shard is one item through that worker's match stage, so the scraped
	// worker-side pipeline counter must equal the coordinator-side wire
	// counter, per shard.
	coord := reg.Snapshot()
	for s := 1; s <= shards; s++ {
		shard := strconv.Itoa(s)
		lines := counterTotal(coord, "ph_shard_epoch_lines_total", map[string]string{"shard": shard})
		matched := counterTotal(rollup, "ph_pipeline_items_total",
			map[string]string{"stage": "match", "shard": shard})
		if lines == 0 {
			t.Fatalf("shard %s saw no epoch lines", shard)
		}
		if matched != lines {
			t.Fatalf("shard %s: worker match items %v != coordinator lines %v",
				shard, matched, lines)
		}
	}

	// Fleet totals equal the unsharded run's: same world, same seed, no
	// sharding, fresh registry.
	reg2 := NewMetricsRegistry()
	cfg2 := shardGoldenConfig(0, "")
	cfg2.Metrics = reg2
	sniffer2, err := NewSniffer(testSimulation(t), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer2.Close()
	if err := sniffer2.RunHours(hours); err != nil {
		t.Fatal(err)
	}
	procCaptures := counterTotal(rollup, "ph_monitor_tweets_captured_total", nil)
	flatCaptures := counterTotal(reg2.Snapshot(), "ph_monitor_tweets_captured_total", nil)
	if procCaptures == 0 || procCaptures != flatCaptures {
		t.Fatalf("federated capture total %v != unsharded %v", procCaptures, flatCaptures)
	}

	// The workers' runtime telemetry federates per shard.
	var rendered strings.Builder
	if err := metrics.WriteTextSnapshots(&rendered, rollup); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= shards; s++ {
		want := `ph_runtime_goroutines{shard="` + strconv.Itoa(s) + `"}`
		if !strings.Contains(rendered.String(), want) {
			t.Fatalf("missing %s in federated rollup:\n%s", want, rendered.String())
		}
	}

	// Re-federating the rendered rollup is a fixpoint.
	exp, err := metrics.ParseExposition(strings.NewReader(rendered.String()))
	if err != nil {
		t.Fatalf("rollup does not re-parse: %v", err)
	}
	var again strings.Builder
	if err := metrics.WriteTextSnapshots(&again,
		metrics.MergeInstances([]metrics.Instance{{Name: "coord", Exposition: exp}})); err != nil {
		t.Fatal(err)
	}
	if rendered.String() != again.String() {
		t.Fatal("scrape → merge → re-expose → parse → merge is not a fixpoint")
	}

	// Aggregated health: every worker answered, 200 with per-shard detail.
	rr := httptest.NewRecorder()
	fed.HealthHandler(sniffer.HealthExtra()).ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("aggregated /healthz = %d: %s", rr.Code, rr.Body.String())
	}
	var fleet obs.FleetHealth
	if err := json.Unmarshal(rr.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Workers) != shards {
		t.Fatalf("health reports %d workers, want %d", len(fleet.Workers), shards)
	}
	for _, w := range fleet.Workers {
		if w.Status != obs.StatusOK {
			t.Fatalf("worker %s unhealthy: %+v", w.Shard, w)
		}
	}

	// /debug/traces shows stitched cross-process epoch trees: a
	// shard_epoch trace whose spans include the workers' re-ingested
	// worker_match spans parented under shard_extract.
	stitched := 0
	for _, info := range tracer.Recent() {
		if info.Name != "shard_epoch" {
			continue
		}
		for _, sp := range info.Spans {
			if sp.Stage != "worker_match" {
				continue
			}
			attrs := map[string]string{}
			for _, kv := range sp.Attrs {
				attrs[kv.Key] = kv.Value
			}
			if attrs["parent"] == "shard_extract" && attrs["shard"] != "" {
				stitched++
			}
		}
	}
	if stitched == 0 {
		t.Fatal("no stitched cross-process epoch tree in /debug/traces")
	}

	// And the HTTP debug view renders them.
	rr = httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "shard_epoch") {
		t.Fatalf("/debug/traces missing epoch trees: %d\n%s", rr.Code, rr.Body.String())
	}
}
