package pseudohoneypot

import (
	"testing"
)

func testSimulation(t *testing.T) *Simulation {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewSimulationValidates(t *testing.T) {
	bad := DefaultConfig()
	bad.NumAccounts = -1
	if _, err := NewSimulation(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSimulationRunsAndStreams(t *testing.T) {
	sim := testSimulation(t)
	n := 0
	cancel := sim.Subscribe(func(*Tweet) { n++ })
	defer cancel()
	before := sim.Now()
	sim.RunHours(2)
	if n == 0 {
		t.Fatal("no tweets streamed")
	}
	if got := sim.Now().Sub(before).Hours(); got != 2 {
		t.Fatalf("advanced %v hours, want 2", got)
	}
	if sim.World().NumAccounts() == 0 {
		t.Fatal("world empty")
	}
}

func TestSnifferEndToEnd(t *testing.T) {
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, SnifferConfig{
		Specs: RandomSpec(120),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()

	sim.RunHours(8)
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	if res.Captures == 0 {
		t.Fatal("no captures")
	}
	if res.Spams == 0 || res.Spammers == 0 {
		t.Fatalf("detected %d spams / %d spammers", res.Spams, res.Spammers)
	}
	if res.Labels.TotalSpams() == 0 {
		t.Fatal("labeling produced nothing")
	}
	if len(res.PGE) == 0 {
		t.Fatal("no PGE rows")
	}
}

func TestSnifferDefaults(t *testing.T) {
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, SnifferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if got := len(sniffer.Monitor().Groups()); got != len(StandardSpecs(2)) {
		t.Fatalf("default specs groups = %d", got)
	}
}

func TestSnifferNilSimulation(t *testing.T) {
	if _, err := NewSniffer(nil, SnifferConfig{}); err == nil {
		t.Fatal("nil simulation accepted")
	}
}

func TestSnifferDetectAllBeforeTraffic(t *testing.T) {
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, SnifferConfig{Specs: RandomSpec(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	if _, err := sniffer.DetectAll(); err == nil {
		t.Fatal("DetectAll with no captures should error")
	}
}

func TestStandardSpecsBudget(t *testing.T) {
	if got := len(StandardSpecs(10)); got != 123 {
		t.Fatalf("standard selector count = %d, want 123", got)
	}
}

func TestNewExperiments(t *testing.T) {
	if _, err := NewExperiments("small"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExperiments("nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestNewAPIServer(t *testing.T) {
	sim := testSimulation(t)
	srv := sim.NewAPIServer()
	if srv == nil {
		t.Fatal("nil server")
	}
	srv.Advance(1)
}
