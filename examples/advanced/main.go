// Advanced: the paper's §V-E refinement loop. Run a broad pseudo-honeypot
// network, rank every selector by garner efficiency (PGE), build the
// advanced system from the top-10 selectors, and race it against the
// random-selection baseline in a fresh world — Figure 6's comparison.
//
//	go run ./examples/advanced
package main

import (
	"fmt"
	"log"

	pseudohoneypot "github.com/pseudo-honeypot/pseudohoneypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := pseudohoneypot.DefaultConfig()
	cfg.NumAccounts = 4000
	cfg.OrganicTweetsPerHour = 800

	// Phase 1: broad deployment to learn which attributes garner most.
	sim, err := pseudohoneypot.NewSimulation(cfg)
	if err != nil {
		return err
	}
	sniffer, err := pseudohoneypot.NewSniffer(sim, pseudohoneypot.SnifferConfig{
		Specs: pseudohoneypot.StandardSpecs(2),
		Seed:  1,
	})
	if err != nil {
		return err
	}
	fmt.Println("phase 1: broad 480-node network, 24 hours...")
	sim.RunHours(24)
	res, err := sniffer.DetectAll()
	if err != nil {
		return err
	}
	sniffer.Close()

	top := core.AdvancedSpecs(res.PGE, 10, 5)
	fmt.Println("refined top-10 selectors:")
	for i, spec := range top {
		fmt.Printf("  %2d. %s\n", i+1, spec.Selector.String())
	}

	// Phase 2: advanced system vs random baseline in a fresh world.
	cfg.Seed = 99
	sim2, err := pseudohoneypot.NewSimulation(cfg)
	if err != nil {
		return err
	}
	advanced, err := pseudohoneypot.NewSniffer(sim2, pseudohoneypot.SnifferConfig{
		Specs: top,
		Seed:  2,
	})
	if err != nil {
		return err
	}
	defer advanced.Close()
	nodes := 0
	for _, s := range top {
		nodes += s.Nodes
	}
	random, err := pseudohoneypot.NewSniffer(sim2, pseudohoneypot.SnifferConfig{
		Specs:          pseudohoneypot.RandomSpec(nodes),
		Seed:           3,
		NaiveSelection: true,
	})
	if err != nil {
		return err
	}
	defer random.Close()

	fmt.Printf("\nphase 2: advanced (%d nodes) vs random (%d nodes), 16 hours...\n",
		nodes, nodes)
	sim2.RunHours(16)

	advRes, err := advanced.DetectAll()
	if err != nil {
		return err
	}
	randRes, err := random.DetectAll()
	if err != nil {
		return err
	}
	fmt.Printf("advanced pseudo-honeypot: %4d spammers (%d spams)\n",
		advRes.Spammers, advRes.Spams)
	fmt.Printf("random baseline:          %4d spammers (%d spams)\n",
		randRes.Spammers, randRes.Spams)
	if randRes.Spammers > 0 {
		fmt.Printf("advantage:                %.1fx (paper: 9.37x at full scale)\n",
			float64(advRes.Spammers)/float64(randRes.Spammers))
	}
	return nil
}
