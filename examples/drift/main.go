// Drift: the paper's §IV-C future-work direction. Spammer signatures
// change over time ("spammer drift"); a detector frozen on the original
// ground truth decays, while an online detector retraining on a sliding
// window of freshly labeled captures keeps up.
//
// The example monitors a simulated world in two phases. Between them the
// spam campaigns re-tool: reaction delays stretch toward human speeds and
// clients switch — the kind of adversarial adaptation the paper warns
// about. Both detectors are scored against ground truth after the shift.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"log"

	pseudohoneypot "github.com/pseudo-honeypot/pseudohoneypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := pseudohoneypot.DefaultConfig()
	cfg.NumAccounts = 3000
	cfg.OrganicTweetsPerHour = 600
	sim, err := pseudohoneypot.NewSimulation(cfg)
	if err != nil {
		return err
	}
	sniffer, err := pseudohoneypot.NewSniffer(sim, pseudohoneypot.SnifferConfig{
		Specs: pseudohoneypot.RandomSpec(150),
		Seed:  1,
	})
	if err != nil {
		return err
	}
	defer sniffer.Close()

	online, err := pseudohoneypot.NewOnlineDetector(pseudohoneypot.ClassifierRF, 2000, 250, 1)
	if err != nil {
		return err
	}

	// Phase 1: original spammer behaviour. The frozen detector trains
	// once on this phase; the online detector observes the same labels.
	fmt.Println("phase 1: 10 hours of original spam behaviour...")
	sim.RunHours(10)
	phase1 := sniffer.Monitor().Captures()
	frozen, err := core.NewClassifier(core.ClassifierRF, 1)
	if err != nil {
		return err
	}
	var x [][]float64
	var y []bool
	for _, c := range phase1 {
		vec := make([]float64, len(c.Vector))
		copy(vec, c.Vector[:])
		x = append(x, vec)
		y = append(y, c.Tweet.Spam) // ground-truth labels, as a labeling run would supply
		if err := online.Observe(c, c.Tweet.Spam); err != nil {
			return err
		}
	}
	if err := frozen.Fit(x, y); err != nil {
		return err
	}
	fmt.Printf("trained on %d captures; online detector retrained %d times\n",
		len(phase1), online.Retrains())

	// The drift: campaigns re-tool. Reaction delays stretch toward
	// organic speeds, eroding the mention-time signal.
	for _, c := range sim.World().Campaigns() {
		c.ReactionDelayMeanSeconds *= 20
	}
	fmt.Println("\nspammer drift: campaign reaction delays stretch 20x")

	// Phase 2: drifted behaviour. The online detector keeps observing
	// labeled data; the frozen one does not.
	fmt.Println("phase 2: 10 more hours under the drifted regime...")
	sim.RunHours(10)
	all := sniffer.Monitor().Captures()
	phase2 := all[len(phase1):]
	for _, c := range phase2 {
		if err := online.Observe(c, c.Tweet.Spam); err != nil {
			return err
		}
	}

	// Score both detectors on the drifted spam.
	var frozenTP, onlineTP, spam int
	var frozenFP, onlineFP, ham int
	for _, c := range phase2 {
		if c.Tweet.Spam {
			spam++
			if frozen.Predict(c.Vector[:]) {
				frozenTP++
			}
			if online.Classify(c) {
				onlineTP++
			}
		} else {
			ham++
			if frozen.Predict(c.Vector[:]) {
				frozenFP++
			}
			if online.Classify(c) {
				onlineFP++
			}
		}
	}
	fmt.Printf("\ndrifted spam in phase 2: %d (of %d captures)\n", spam, len(phase2))
	fmt.Printf("frozen detector: recall %.2f, false positives %d/%d\n",
		recall(frozenTP, spam), frozenFP, ham)
	fmt.Printf("online detector: recall %.2f, false positives %d/%d (%d retrains)\n",
		recall(onlineTP, spam), onlineFP, ham, online.Retrains())
	return nil
}

func recall(tp, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(tp) / float64(total)
}
