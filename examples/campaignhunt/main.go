// Campaignhunt: exposes a spam campaign with the paper's clustering-based
// labeling (§IV-B) alone — profile-image dHash groups, screen-name Σ-Seq
// groups, MinHash near-duplicate descriptions and tweets — seeded only by
// platform suspensions, with no trained model involved.
//
//	go run ./examples/campaignhunt
package main

import (
	"fmt"
	"log"
	"sort"

	pseudohoneypot "github.com/pseudo-honeypot/pseudohoneypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/textutil"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := pseudohoneypot.DefaultConfig()
	cfg.NumAccounts = 3000
	cfg.OrganicTweetsPerHour = 600
	cfg.SuspensionRatePerHour = 0.02 // the platform has begun sweeping
	sim, err := pseudohoneypot.NewSimulation(cfg)
	if err != nil {
		return err
	}

	// Collect the mention stream for a day.
	var tweets []*socialnet.Tweet
	cancel := sim.Subscribe(func(t *socialnet.Tweet) {
		if len(t.Mentions) > 0 {
			tweets = append(tweets, t)
		}
	})
	sim.RunHours(24)
	cancel()
	fmt.Printf("collected %d mention tweets\n", len(tweets))

	// Run only the suspended + clustering stages (no rules, no manual
	// checking): label propagation through shared campaign artefacts.
	corpus := label.NewCorpus(tweets, sim.World().Account)
	pipeline := label.NewPipeline(label.DefaultConfig())
	result := pipeline.Run(corpus, nil /* no manual-checking oracle */)

	suspendedSeeds, viaClustering := 0, 0
	for _, m := range result.Spammers {
		switch m {
		case label.MethodSuspended:
			suspendedSeeds++
		case label.MethodClustering:
			viaClustering++
		}
	}
	fmt.Printf("suspension seeds:            %d accounts\n", suspendedSeeds)
	fmt.Printf("uncovered via clustering:    %d accounts\n", viaClustering)

	// Show one uncovered campaign: members share a screen-name shape.
	shapes := make(map[string][]string)
	for id, m := range result.Spammers {
		if m != label.MethodClustering {
			continue
		}
		if a := sim.World().Account(id); a != nil {
			seq := textutil.ClassSeqWithRunLengths(a.ScreenName)
			shapes[seq] = append(shapes[seq], a.ScreenName)
		}
	}
	type group struct {
		seq   string
		names []string
	}
	var groups []group
	for seq, names := range shapes {
		groups = append(groups, group{seq: seq, names: names})
	}
	sort.Slice(groups, func(i, j int) bool { return len(groups[i].names) > len(groups[j].names) })
	fmt.Println("\nlargest uncovered naming-template groups:")
	for i, g := range groups {
		if i >= 3 || len(g.names) < 2 {
			break
		}
		show := g.names
		if len(show) > 5 {
			show = show[:5]
		}
		fmt.Printf("  Σ-Seq %-14s %3d members, e.g. %v\n", g.seq, len(g.names), show)
	}

	// Score the clustering-only labels against generative ground truth.
	tp, fp := 0, 0
	for id := range result.Spammers {
		if a := sim.World().Account(id); a != nil && a.Kind == socialnet.KindSpammer {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp > 0 {
		fmt.Printf("\nclustering label precision vs ground truth: %.3f (%d/%d)\n",
			float64(tp)/float64(tp+fp), tp, tp+fp)
	}
	return nil
}
