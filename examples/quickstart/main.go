// Quickstart: build a simulated social world, attach a pseudo-honeypot
// sniffer, run a day of traffic, and print the detection summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pseudohoneypot "github.com/pseudo-honeypot/pseudohoneypot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A simulated Twitter-scale world: accounts, spam campaigns,
	//    organic traffic. Deterministic in the seed.
	cfg := pseudohoneypot.DefaultConfig()
	cfg.NumAccounts = 4000
	cfg.OrganicTweetsPerHour = 800
	sim, err := pseudohoneypot.NewSimulation(cfg)
	if err != nil {
		return err
	}

	// 2. A pseudo-honeypot sniffer: selects existing accounts whose
	//    attributes attract spammers (Table II sample values, hashtag
	//    categories, trending behaviour) and monitors mentions crossing
	//    them, rotating nodes every simulated hour.
	sniffer, err := pseudohoneypot.NewSniffer(sim, pseudohoneypot.SnifferConfig{
		Specs: pseudohoneypot.StandardSpecs(2), // 480-node network
		Seed:  1,
	})
	if err != nil {
		return err
	}
	defer sniffer.Close()

	// 3. A day of traffic.
	fmt.Println("monitoring 24 simulated hours...")
	sim.RunHours(24)

	// 4. Label, train the random-forest detector, classify.
	res, err := sniffer.DetectAll()
	if err != nil {
		return err
	}
	fmt.Printf("collected tweets:   %d\n", res.Captures)
	fmt.Printf("classified spams:   %d\n", res.Spams)
	fmt.Printf("detected spammers:  %d\n", res.Spammers)
	fmt.Println("\ntop 5 attributes by garner efficiency:")
	for i, row := range res.PGE {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-34s PGE=%.4f (%d spammers)\n",
			i+1, row.Selector.String(), row.PGE, row.Spammers)
	}
	return nil
}
