// Livestream: the distributed path. Starts an in-process twitterd-style
// API server, screens pseudo-honeypot candidates through the REST search
// endpoint, attaches to the statuses/filter streaming endpoint with
// mention tracking, and prints spam-looking tweets as they arrive — the
// same Tweepy workflow the paper's implementation used (§V-A).
//
//	go run ./examples/livestream
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	pseudohoneypot "github.com/pseudo-honeypot/pseudohoneypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Spin up the simulated Twitter API server.
	cfg := pseudohoneypot.DefaultConfig()
	cfg.NumAccounts = 3000
	cfg.OrganicTweetsPerHour = 600
	sim, err := pseudohoneypot.NewSimulation(cfg)
	if err != nil {
		return err
	}
	api := sim.NewAPIServer()
	httpSrv := httptest.NewServer(api)
	defer httpSrv.Close()
	fmt.Printf("twitterd emulation listening at %s\n", httpSrv.URL)

	client := twitterapi.NewClient(httpSrv.URL, httpSrv.Client())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Screen candidates through the REST search endpoint: accounts added
	// to roughly one list per day of age — the paper's most effective
	// attribute — plus trending-up posters.
	var track []string
	for _, q := range []twitterapi.SearchQuery{
		{Attr: "lists_per_day", Value: 1, Count: 10, Tolerance: 0.5},
		{Attr: "followers_count", Value: 10000, Count: 10, Tolerance: 0.5},
		{Attr: "trend", Trend: "trending-up", Count: 10},
	} {
		users, err := client.UsersSearch(ctx, q)
		if err != nil {
			return err
		}
		for _, u := range users {
			track = append(track, "@"+u.ScreenName)
		}
	}
	fmt.Printf("tracking %d pseudo-honeypot nodes via statuses/filter\n\n", len(track))

	// Attach to the stream; a tiny keyword heuristic stands in for the
	// trained detector so the example stays self-contained.
	var mu sync.Mutex
	spamLooking, total := 0, 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = client.Stream(ctx, twitterapi.StreamFilter{Track: track}, func(tw twitterapi.Tweet) {
			mu.Lock()
			defer mu.Unlock()
			total++
			if looksSpammy(tw) {
				spamLooking++
				if spamLooking <= 8 {
					fmt.Printf("[spam?] @%s: %.80s\n", tw.User.ScreenName, tw.Text)
				}
			}
		})
	}()

	// Drive six simulated hours through the server.
	for h := 0; h < 6; h++ {
		if _, err := client.Advance(ctx, 1); err != nil {
			return err
		}
		time.Sleep(150 * time.Millisecond) // let the stream drain
	}
	cancel()
	<-done

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nstream delivered %d tweets; %d look spammy\n", total, spamLooking)
	return nil
}

// looksSpammy is a deliberately simple stand-in for the trained detector.
func looksSpammy(tw twitterapi.Tweet) bool {
	text := strings.ToLower(tw.Text)
	for _, kw := range []string{"money", "free", "click", "follow", "win", ".example"} {
		if strings.Contains(text, kw) {
			return true
		}
	}
	return len(tw.Entities.URLs) > 0
}
