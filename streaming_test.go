package pseudohoneypot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/parallel"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// runDetection builds a fresh simulation, attaches a sniffer with cfg, runs
// hours of traffic, and reports the detection result. Each call regenerates
// the world from the same seed, so two calls differing only in pipeline
// mode see the identical tweet stream.
func runDetection(t *testing.T, cfg SnifferConfig, hours int) *DetectionResult {
	t.Helper()
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()
	sim.RunHours(hours)
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamingMatchesBatch is the tentpole's acceptance property: with the
// same seed, the micro-batched streaming run must be identical to the
// synchronous batch run — result counts, every label, and the PGE ranking —
// at several worker counts and micro-batch shapes.
func TestStreamingMatchesBatch(t *testing.T) {
	base := SnifferConfig{Specs: RandomSpec(120), Seed: 1}
	for _, workers := range []string{"1", "2", "8"} {
		t.Run("workers="+workers, func(t *testing.T) {
			t.Setenv(parallel.EnvWorkers, workers)
			want := runDetection(t, base, 6)
			if want.Captures == 0 {
				t.Fatal("batch run captured nothing")
			}
			for _, batch := range []int{1, 16} {
				scfg := base
				scfg.Stream = StreamConfig{
					Enabled:       true,
					BatchSize:     batch,
					FlushInterval: time.Millisecond,
				}
				got := runDetection(t, scfg, 6)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("streaming run (batch=%d) diverged from batch run:\n"+
						"batch:  captures=%d spams=%d spammers=%d checks=%d\n"+
						"stream: captures=%d spams=%d spammers=%d checks=%d",
						batch,
						want.Captures, want.Spams, want.Spammers, want.Labels.ManualChecks,
						got.Captures, got.Spams, got.Spammers, got.Labels.ManualChecks)
				}
			}
		})
	}
}

// fingerprintResult hashes every observable of a detection result: counts,
// each label with its method in key order, manual-check budget spend, and
// the full PGE ranking bit for bit.
func fingerprintResult(res *DetectionResult) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeInt(res.Captures)
	writeInt(res.Spams)
	writeInt(res.Spammers)

	tweetMaps := []map[socialnet.TweetID]LabelMethod{res.Labels.SpamTweets, res.Labels.HamTweets}
	for _, m := range tweetMaps {
		ids := make([]socialnet.TweetID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			writeInt(int(id))
			writeInt(int(m[id]))
		}
	}
	userMaps := []map[socialnet.AccountID]LabelMethod{res.Labels.Spammers, res.Labels.Benign}
	for _, m := range userMaps {
		ids := make([]socialnet.AccountID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			writeInt(int(id))
			writeInt(int(m[id]))
		}
	}
	writeInt(res.Labels.ManualChecks)

	for _, row := range res.PGE {
		fmt.Fprintf(h, "%#v", row.Selector)
		writeInt(row.Spammers)
		writeInt(row.Spams)
		writeInt(row.Tweets)
		writeFloat(row.NodeHours)
		writeFloat(row.PGE)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenStreamingFingerprint pins the streaming run at the reference
// configuration (seed 1, 120 random nodes, 6 hours, 16-tweet micro-batches,
// PH_WORKERS=2). TestStreamingMatchesBatch proves streaming == batch within
// a build; this constant pins both across builds — any engine, pipeline,
// labeling, or detector change that shifts results must retake it.
const goldenStreamingFingerprint = "70abfdaa81854edaeb5f286f7df5cbf68e1f7a40dc13234bd56bd56e18c990b6"

// TestStreamingGoldenFingerprint checks the pinned end-to-end fingerprint.
func TestStreamingGoldenFingerprint(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "2")
	res := runDetection(t, SnifferConfig{
		Specs: RandomSpec(120),
		Seed:  1,
		Stream: StreamConfig{
			Enabled:       true,
			BatchSize:     16,
			FlushInterval: time.Millisecond,
		},
	}, 6)
	if got := fingerprintResult(res); got != goldenStreamingFingerprint {
		t.Fatalf("streaming fingerprint drifted:\n got  %s\n want %s", got, goldenStreamingFingerprint)
	}
}

// TestStreamingBoundedCaptureStore streams far more captures than the
// configured cap and asserts the retention bound holds, eviction is
// observable, detection still runs on the retained window, and the pipeline
// instrumentation (queue depth, backpressure) is exposed on the registry.
func TestStreamingBoundedCaptureStore(t *testing.T) {
	reg := NewMetricsRegistry()
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, SnifferConfig{
		Specs:      RandomSpec(120),
		Seed:       1,
		CaptureCap: 64,
		Metrics:    reg,
		Stream: StreamConfig{
			Enabled:    true,
			BatchSize:  4,
			QueueDepth: 8, // tiny queues so the stream hits backpressure
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()

	sim.RunHours(8)
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}

	store := sniffer.Monitor().Store()
	if store.Evicted() == 0 {
		t.Fatalf("stream of %d captures never overflowed the cap", store.Len())
	}
	if store.Len() != 64 {
		t.Fatalf("store holds %d captures, want exactly the cap (64)", store.Len())
	}
	if res.Captures != 64 {
		t.Fatalf("detection saw %d captures, want the retained 64", res.Captures)
	}
	// Labels cover the whole stream, not just the retained window.
	if total := len(res.Labels.SpamTweets) + len(res.Labels.HamTweets); total <= 64 {
		t.Fatalf("only %d labeled tweets; the label store should outlive eviction", total)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"ph_pipeline_queue_depth",
		"ph_pipeline_backpressure_total",
		"ph_pipeline_items_total",
		"ph_capture_store_size 64",
		"ph_capture_store_evicted_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics exposition missing %s", family)
		}
	}
}

// TestStreamingFeedsOnlineDetector checks the detect stage: with an online
// detector configured, every streamed capture lands in its sliding window
// with a provisional label, and the window retrains as it fills.
func TestStreamingFeedsOnlineDetector(t *testing.T) {
	online, err := NewOnlineDetector(ClassifierDT, 400, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, SnifferConfig{
		Specs:  RandomSpec(120),
		Seed:   1,
		Online: online,
		Stream: StreamConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sniffer.Close()

	sim.RunHours(6)
	if _, err := sniffer.DetectAll(); err != nil {
		t.Fatal(err)
	}
	if online.WindowSize() == 0 {
		t.Fatal("online detector window empty after streaming")
	}
	if online.Retrains() == 0 {
		t.Fatal("online detector never retrained on the stream")
	}
}

// TestStreamingCloseIsIdempotent double-closes a streaming sniffer; the
// second call must be a no-op, not a panic on re-closing queues.
func TestStreamingCloseIsIdempotent(t *testing.T) {
	sim := testSimulation(t)
	sniffer, err := NewSniffer(sim, SnifferConfig{
		Specs:  RandomSpec(20),
		Seed:   1,
		Stream: StreamConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunHours(1)
	sniffer.Close()
	sniffer.Close()
}
