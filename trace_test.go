package pseudohoneypot

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/simclock"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
)

// tracedRun executes the full pipeline — monitor, label, train, classify,
// attribute — with the given tracer wired through every stage.
func tracedRun(t *testing.T, tracer *Tracer) (*Sniffer, *DetectionResult) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sniffer, err := NewSniffer(sim, SnifferConfig{
		Specs:      StandardSpecs(1),
		Classifier: ClassifierDT, // cheapest family; tracing is the subject
		Seed:       7,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sniffer.Close)
	sim.RunHours(6)
	res, err := sniffer.DetectAll()
	if err != nil {
		t.Fatal(err)
	}
	return sniffer, res
}

// TestTracedRunDeterministic replays the same simulated run twice with
// simclock-driven tracers and requires byte-identical /debug/traces
// payloads: ids, spans, attrs, and JSON order must all be reproducible.
func TestTracedRunDeterministic(t *testing.T) {
	serve := func() (string, *DetectionResult) {
		clk := simclock.NewSimulated(time.Unix(0, 0).UTC())
		tracer := trace.New(trace.Config{Enabled: true, Buffer: 1 << 14, Clock: clk.Now})
		_, res := tracedRun(t, tracer)
		rec := httptest.NewRecorder()
		tracer.Handler().ServeHTTP(rec,
			httptest.NewRequest(http.MethodGet, "/debug/traces?limit=0", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/debug/traces status %d", rec.Code)
		}
		return rec.Body.String(), res
	}
	first, res1 := serve()
	second, res2 := serve()
	if first != second {
		t.Fatalf("trace payloads differ between identical runs (len %d vs %d)",
			len(first), len(second))
	}
	if res1.Spams != res2.Spams || res1.Spammers != res2.Spammers {
		t.Fatalf("detection results differ: %+v vs %+v", res1, res2)
	}
}

// TestTracingDoesNotPerturbResults runs the identical simulation with
// tracing off and fully on; verdict counts, labels, and the PGE ranking
// must match exactly — tracing observes the pipeline, never steers it.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	off := trace.New(trace.Config{Enabled: false})
	on := trace.New(trace.Config{Enabled: true, Buffer: 1 << 14})
	_, resOff := tracedRun(t, off)
	_, resOn := tracedRun(t, on)

	if resOff.Captures != resOn.Captures ||
		resOff.Spams != resOn.Spams ||
		resOff.Spammers != resOn.Spammers {
		t.Fatalf("tracing changed detection: off %+v on %+v", resOff, resOn)
	}
	if resOff.Labels.TotalSpams() != resOn.Labels.TotalSpams() ||
		resOff.Labels.TotalSpammers() != resOn.Labels.TotalSpammers() {
		t.Fatal("tracing changed labeling")
	}
	if len(resOff.PGE) != len(resOn.PGE) {
		t.Fatal("tracing changed PGE length")
	}
	for i := range resOff.PGE {
		if resOff.PGE[i] != resOn.PGE[i] {
			t.Fatalf("tracing changed PGE row %d: %+v vs %+v",
				i, resOff.PGE[i], resOn.PGE[i])
		}
	}
}

// TestCaptureTraceSpanCoverage checks the acceptance contract: every
// capture's trace records its full journey — capture, feature extraction,
// every labeling pass, and classification.
func TestCaptureTraceSpanCoverage(t *testing.T) {
	tracer := trace.New(trace.Config{Enabled: true, Buffer: 1 << 14})
	sniffer, res := tracedRun(t, tracer)
	if res.Captures == 0 {
		t.Fatal("no captures")
	}
	wantStages := []string{
		"capture", "feature_extract",
		"label_suspended", "label_cluster_image", "label_cluster_name",
		"label_cluster_description", "label_cluster_tweets",
		"label_rules", "label_manual",
		"classify",
	}
	for _, c := range sniffer.Monitor().Captures() {
		if c.Trace == nil {
			t.Fatal("capture without trace")
		}
		info := c.Trace.Snapshot()
		for _, stage := range wantStages {
			if _, ok := info.Span(stage); !ok {
				t.Fatalf("capture trace %s missing %q span (has %d spans)",
					info.ID, stage, len(info.Spans))
			}
		}
	}
	// The batch traces are retained alongside the capture traces.
	for _, name := range []string{"label", "detector_train", "detector_classify", "pge_attribute", "rotate"} {
		found := false
		for _, info := range tracer.Recent() {
			if info.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no %q trace retained", name)
		}
	}
}

// TestSpanHistogramConsistency wires the tracer's observer to a private
// metrics registry and checks the cross-layer invariant: for every stage,
// the ph_trace_span_seconds histogram's sum and count match the summed
// span durations in the trace ring buffer.
func TestSpanHistogramConsistency(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.New(trace.Config{
		Enabled:  true,
		Buffer:   1 << 14, // retain everything: eviction would drop ring spans but not histogram samples
		Observer: reg.SpanObserver(),
	})
	tracedRun(t, tracer)

	sum := tracer.Summary(0)
	if sum.Spans == 0 {
		t.Fatal("no spans retained")
	}
	type hist struct {
		count uint64
		sum   float64
	}
	byStage := make(map[string]hist)
	for _, fam := range reg.Snapshot() {
		if fam.Name != "ph_trace_span_seconds" {
			continue
		}
		for _, s := range fam.Samples {
			for _, l := range s.Labels {
				if l.Name == "stage" {
					byStage[l.Value] = hist{count: s.Count, sum: s.Sum}
				}
			}
		}
	}
	if len(byStage) == 0 {
		t.Fatal("observer recorded nothing")
	}
	for _, st := range sum.Stages {
		h, ok := byStage[st.Stage]
		if !ok {
			t.Fatalf("stage %q in traces but not in histograms", st.Stage)
		}
		if h.count != uint64(st.Count) {
			t.Fatalf("stage %q: %d spans vs %d histogram observations",
				st.Stage, st.Count, h.count)
		}
		diff := h.sum - st.SumSeconds
		if diff < 0 {
			diff = -diff
		}
		tol := 1e-9 * float64(st.Count+1)
		if diff > tol {
			t.Fatalf("stage %q: span sum %v vs histogram sum %v (diff %v)",
				st.Stage, st.SumSeconds, h.sum, diff)
		}
	}
	if len(byStage) != len(sum.Stages) {
		t.Fatalf("histogram has %d stages, traces have %d",
			len(byStage), len(sum.Stages))
	}
}
