package pseudohoneypot

import (
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/source"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

// NewTwitterSource wraps the simulation as an explicit ingest source —
// the same adapter the sniffer uses implicitly when SnifferConfig.Sources
// is empty. It exists so callers can mux the simulated Twitter firehose
// with other sources.
func NewTwitterSource(sim *Simulation) IngestSource {
	return source.NewTwitter(sim.world, sim.engine)
}

// NewRedditSource creates the synthetic Reddit-like firehose
// (submissions, comments, crossposts) mapped into the Twitter-shaped
// flow. See source.RedditConfig for the knobs.
func NewRedditSource(cfg RedditSourceConfig) (IngestSource, error) {
	return source.NewReddit(cfg)
}

// RedditSourceConfig parameterizes the Reddit-like source.
type RedditSourceConfig = source.RedditConfig

// NewReplaySource opens a recorded capture WAL (written by a run with
// Durability.RecordRotations) as an ingest source that re-feeds every
// capture through the full pipeline.
func NewReplaySource(dir string) (IngestSource, error) {
	b, err := store.NewDir(dir)
	if err != nil {
		return nil, err
	}
	return source.NewReplay(b)
}

// sourceInstruments exposes per-source ingest counters. Child counters
// are cached per origin; the maps are touched only on the delivery
// goroutine, so no locking.
type sourceInstruments struct {
	posts    *metrics.CounterVec
	captures *metrics.CounterVec
	postC    map[string]*metrics.Counter
	capC     map[string]*metrics.Counter
}

func newSourceInstruments(r *metrics.Registry) *sourceInstruments {
	if r == nil {
		r = metrics.Default()
	}
	return &sourceInstruments{
		posts: r.CounterVec("ph_source_posts_total",
			"Posts delivered by an ingest source.", "source"),
		captures: r.CounterVec("ph_source_captures_total",
			"Delivered posts that matched the monitored node set.", "source"),
		postC: make(map[string]*metrics.Counter),
		capC:  make(map[string]*metrics.Counter),
	}
}

func (si *sourceInstruments) post(origin string) {
	c, ok := si.postC[origin]
	if !ok {
		c = si.posts.With(origin)
		si.postC[origin] = c
	}
	c.Inc()
}

func (si *sourceInstruments) capture(origin string) {
	c, ok := si.capC[origin]
	if !ok {
		c = si.captures.With(origin)
		si.capC[origin] = c
	}
	c.Inc()
}

// rotateHour is the hour hook shared by the streaming and inproc-sharded
// topologies: rotate the node set (or re-accrue a replayed rotation),
// journal the rotation when recording, and checkpoint on cadence. It runs
// on the source's delivery goroutine at an hour boundary, when the
// producer is idle — the quiescence the durable checkpoint needs.
func (s *Sniffer) rotateHour(hour int, now time.Time) {
	if counts := s.src.Rotation(hour); counts != nil {
		// A replayed recording cannot re-screen its world; credit the
		// recorded per-group node counts instead.
		s.monitor.AccrueGroupNodes(counts, time.Hour)
	} else {
		s.monitor.Rotate(now, time.Hour)
		if s.store != nil && s.cfg.Durability.RecordRotations {
			_ = s.store.AppendRotation(&store.RotationRecord{
				Hour:   hour,
				Now:    now,
				Counts: s.monitor.LastRotationCounts(),
			})
		}
	}
	if s.store != nil && hour > 0 && hour%s.ckptEvery == 0 {
		// Failures are non-fatal — the WAL still covers everything since
		// the last good checkpoint.
		_ = s.checkpointDurable()
	}
}

// matchPost runs the ingest step for one delivered post on the delivery
// goroutine: watermark fast-forward, the mention filter (or adoption of a
// replayed capture's recorded match), per-source accounting, and the
// source stamp. It returns nil when the post is not captured.
func (s *Sniffer) matchPost(p source.Post) *core.Capture {
	t := p.Tweet
	if t.ID <= s.watermark {
		// Recovery fast-forward: this tweet's effects (capture or miss)
		// are already in the restored state.
		return nil
	}
	s.srcIns.post(p.Origin)
	var c *core.Capture
	if p.Replay != nil {
		var err error
		c, err = s.monitor.AdoptCapture(t, p.Replay.Sender, p.Replay.Receiver, p.Replay.Groups, s.src.Lookup)
		if err != nil {
			if s.srcErr == nil {
				s.srcErr = err
			}
			return nil
		}
	} else {
		c = s.monitor.Match(t, s.src.Lookup)
	}
	if c == nil {
		return nil
	}
	c.Source = p.Origin
	s.srcIns.capture(p.Origin)
	s.lastCaptured = t.ID
	return c
}

// trackProfile records an account id for the end-of-run profile epilogue
// in first-appearance order. Called from the WAL-append stage goroutine.
func (s *Sniffer) trackProfile(id socialnet.AccountID) {
	if s.profSeen == nil {
		s.profSeen = make(map[socialnet.AccountID]struct{})
	}
	if _, ok := s.profSeen[id]; ok {
		return
	}
	s.profSeen[id] = struct{}{}
	s.profIDs = append(s.profIDs, id)
}

// writeProfileEpilogue appends the final live profiles of every account
// the run's captures referenced. Runs at Close, after the stage graph has
// stopped; replay resolves senders and receivers (suspension state
// included) from this record instead of a live world.
func (s *Sniffer) writeProfileEpilogue() {
	if !s.cfg.Durability.RecordRotations || len(s.profIDs) == 0 {
		return
	}
	accounts := make([]*socialnet.Account, 0, len(s.profIDs))
	for _, id := range s.profIDs {
		if a := s.sim.world.Account(id); a != nil {
			accounts = append(accounts, a)
		}
	}
	_ = s.store.AppendProfiles(accounts)
}
