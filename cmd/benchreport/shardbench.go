package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/shard"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// The shard bench pins the tentpole claim of the sharded multi-monitor
// architecture: capture throughput scales with the shard count. It
// pre-generates one fixed capture workload from the simulation, then
// replays it through the in-process sharded fanout at 1, 2, 4, and 8
// shards, timing the per-shard stateless stage (feature extraction +
// label prep) plus the ordered merge — the path that partitioning
// parallelizes.
const (
	// shardBenchReps is the number of timed passes per shard count; the
	// median throughput is reported.
	shardBenchReps = 3
	// shardBenchReplay is how many times the capture workload is replayed
	// per timed pass, sizing passes well past timer noise.
	shardBenchReplay = 8
	// shardBenchHours/shardBenchNodes size the workload generation.
	shardBenchHours = 6
	shardBenchNodes = 250
)

// shardBenchCounts is the shard-count curve, matching the determinism
// test's pinned topologies.
var shardBenchCounts = []int{1, 2, 4, 8}

// shardReport is the schema of BENCH_shard.json.
type shardReport struct {
	Workload shardWorkloadMeta `json:"workload"`
	Shards   []shardEntry      `json:"shards"`
}

type shardWorkloadMeta struct {
	Captures int    `json:"captures"`
	Replay   int    `json:"replay"`
	Cores    int    `json:"cores"`
	Note     string `json:"note"`
}

type shardEntry struct {
	Shards         int     `json:"shards"`
	CapturesPerSec float64 `json:"captures_per_sec"`
	Speedup        float64 `json:"speedup_vs_1"`
}

// shardSpeedupFloor is the bench-shard-check gate on the fresh 4-shard
// speedup, tiered by the checking machine's core count: the ISSUE target
// (2.5x at 4 shards) applies on an 8-core runner; smaller machines cannot
// physically reach it, so the floor degrades to what their parallelism
// admits — down to a sanity floor (sharding must not halve throughput)
// on a single core.
func shardSpeedupFloor(cores int) float64 {
	switch {
	case cores >= 8:
		return 2.5
	case cores >= 4:
		return 1.6
	case cores >= 2:
		return 1.15
	default:
		return 0.5
	}
}

// genShardWorkload runs the simulation once and collects every capture
// the rotating monitor matches, exactly the items the sharded fanout
// partitions in production.
func genShardWorkload() ([]*core.Capture, *core.Monitor) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 2500
	cfg.OrganicTweetsPerHour = 1500
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	e := socialnet.NewEngine(w)
	m := core.NewMonitor(core.MonitorConfig{
		Specs:      core.RandomSpec(shardBenchNodes),
		ActiveOnly: true,
		Seed:       11,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(12))})

	var caps []*core.Capture
	e.OnHourStart(func(_ int, now time.Time) { m.Rotate(now, time.Hour) })
	cancel := e.Subscribe(func(t *socialnet.Tweet) {
		if c := m.Match(t, w.Account); c != nil {
			caps = append(caps, c)
		}
	})
	defer cancel()
	e.RunHours(shardBenchHours)
	return caps, m
}

// shardPass replays the workload once through a fresh fanout at the given
// shard count and returns the wall time. A fresh fanout per pass keeps the
// per-shard first-appearance prep state identical across passes and shard
// counts.
func shardPass(caps []*core.Capture, m *core.Monitor, shards int) float64 {
	done := 0
	f := shard.NewFanout(shard.FanoutConfig{
		Shards:   shards,
		Monitor:  m,
		Prepper:  label.NewPrepper(label.DefaultConfig()),
		Complete: func(*shard.Item) { done++ },
		Label: func(items []shard.Item) []bool {
			return make([]bool, len(items))
		},
		Observe: func(*core.Capture, bool) {},
	})
	start := time.Now()
	for r := 0; r < shardBenchReplay; r++ {
		for _, c := range caps {
			f.Ingest(c)
		}
	}
	f.Drain()
	secs := time.Since(start).Seconds()
	f.Close()
	if want := len(caps) * shardBenchReplay; done != want {
		panic(fmt.Sprintf("shardbench: fanout completed %d of %d captures", done, want))
	}
	return secs
}

// shardMeasure reports the median captures/sec across timed passes.
func shardMeasure(caps []*core.Capture, m *core.Monitor, shards int) float64 {
	shardPass(caps, m, shards) // warm-up
	secs := make([]float64, shardBenchReps)
	for r := range secs {
		secs[r] = shardPass(caps, m, shards)
	}
	sort.Float64s(secs)
	return float64(len(caps)*shardBenchReplay) / secs[shardBenchReps/2]
}

// shardRun generates the workload and measures the shard-count curve.
func shardRun() (*shardReport, error) {
	caps, m := genShardWorkload()
	if len(caps) == 0 {
		return nil, fmt.Errorf("shardbench: workload generated no captures")
	}
	report := &shardReport{
		Workload: shardWorkloadMeta{
			Captures: len(caps),
			Replay:   shardBenchReplay,
			Cores:    runtime.NumCPU(),
			Note: fmt.Sprintf("fixed capture workload (%dh sim, %d nodes) replayed through the "+
				"in-process sharded fanout; median of %d passes", shardBenchHours, shardBenchNodes, shardBenchReps),
		},
	}
	var base float64
	for _, n := range shardBenchCounts {
		rate := shardMeasure(caps, m, n)
		if n == 1 {
			base = rate
		}
		report.Shards = append(report.Shards, shardEntry{
			Shards:         n,
			CapturesPerSec: rate,
			Speedup:        rate / base,
		})
	}
	return report, nil
}

// runShardBench regenerates the BENCH_shard.json baseline.
func runShardBench(path string) error {
	report, err := shardRun()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range report.Shards {
		fmt.Printf("shards=%d  %9.0f captures/s  speedup %.2fx\n", e.Shards, e.CapturesPerSec, e.Speedup)
	}
	fmt.Printf("wrote %s (cores=%d)\n", path, report.Workload.Cores)
	return nil
}

// runShardCheck remeasures the scaling curve and fails when the fresh
// 4-shard speedup falls below the core-count-tiered floor. The committed
// baseline is reported for context; the gate itself is machine-relative
// (a 1-core CI box cannot reproduce an 8-core runner's curve).
// PH_SKIP_SHARD_CHECK=1 skips the check.
func runShardCheck(path string) error {
	if os.Getenv("PH_SKIP_SHARD_CHECK") != "" {
		fmt.Println("shardcheck: skipped (PH_SKIP_SHARD_CHECK set)")
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old shardReport
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("shardcheck: %s: %w", path, err)
	}
	fresh, err := shardRun()
	if err != nil {
		return err
	}
	floor := shardSpeedupFloor(runtime.NumCPU())
	var got float64
	for _, e := range fresh.Shards {
		var rec float64
		for _, oe := range old.Shards {
			if oe.Shards == e.Shards {
				rec = oe.Speedup
			}
		}
		fmt.Printf("shards=%d  recorded %.2fx (on %d cores)  fresh %.2fx\n",
			e.Shards, rec, old.Workload.Cores, e.Speedup)
		if e.Shards == 4 {
			got = e.Speedup
		}
	}
	if got < floor {
		return fmt.Errorf("shardcheck: 4-shard speedup %.2fx below the %.2fx floor for %d cores",
			got, floor, runtime.NumCPU())
	}
	fmt.Printf("shardcheck: 4-shard speedup %.2fx meets the %.2fx floor for %d cores\n",
		got, floor, runtime.NumCPU())
	return nil
}
