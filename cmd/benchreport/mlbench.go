package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/boost"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/forest"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/tree"
)

// mlBenchReps is the number of timed fits per mode; the median is
// reported so a single scheduler hiccup cannot skew the baseline file.
const mlBenchReps = 3

// mlBenchReport is the schema of BENCH_ml.json.
type mlBenchReport struct {
	Dataset    mlBenchDataset `json:"dataset"`
	Benchmarks []mlBenchEntry `json:"benchmarks"`
}

type mlBenchDataset struct {
	Samples  int    `json:"samples"`
	Features int    `json:"features"`
	Seed     int64  `json:"seed"`
	Note     string `json:"note"`
}

type mlBenchEntry struct {
	Name        string  `json:"name"`
	Config      string  `json:"config"`
	BaselineMS  float64 `json:"baseline_ms"`
	PresortedMS float64 `json:"presorted_ms"`
	Speedup     float64 `json:"speedup"`
}

// mlBenchData fabricates the fixed training set every mlbench run uses:
// a mix of continuous and quantized columns (every third column is
// rounded to halves, mimicking count-like spam features) with a noisy
// nonlinear label.
func mlBenchData(n, d int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
			if j%3 == 0 {
				row[j] = math.Round(row[j]*2) / 2
			}
		}
		x[i] = row
		y[i] = row[0]+row[1]*row[2] > 1
		if rng.Float64() < 0.05 {
			y[i] = !y[i]
		}
	}
	return x, y
}

// medianFitMS times fn mlBenchReps times and returns the median in
// milliseconds. A warm-up call precedes the timed runs.
func medianFitMS(fn func()) float64 {
	fn()
	times := make([]float64, mlBenchReps)
	for r := range times {
		start := time.Now()
		fn()
		times[r] = float64(time.Since(start)) / float64(time.Millisecond)
	}
	sort.Float64s(times)
	return times[mlBenchReps/2]
}

// runMLBench regenerates the BENCH_ml.json baseline: for each of the
// three training paths (CART tree, paper-config forest, boosted
// ensemble) it times the legacy per-node-sort reference scan against the
// presorted-column engine on the same data and verifies the exact-mode
// models agree bit for bit before recording the speedup.
func runMLBench(path string) error {
	const (
		n    = 2000
		d    = 17
		seed = 42
	)
	x, y := mlBenchData(n, d, seed)
	probes, _ := mlBenchData(200, d, seed+1)

	report := mlBenchReport{
		Dataset: mlBenchDataset{
			Samples:  n,
			Features: d,
			Seed:     seed,
			Note:     "synthetic spam-like features; median of " + fmt.Sprint(mlBenchReps) + " fits per mode",
		},
	}

	// CART tree, paper-style effectively-unbounded depth.
	{
		fit := func(reference bool) *tree.Tree {
			tr := tree.New(tree.Config{MaxDepth: 700, Seed: 1, Reference: reference})
			if err := tr.Fit(x, y); err != nil {
				panic(err)
			}
			return tr
		}
		a, b := fit(false), fit(true)
		for _, p := range probes {
			if a.Predict(p) != b.Predict(p) {
				return fmt.Errorf("mlbench: tree exact mode diverges from reference")
			}
		}
		base := medianFitMS(func() { fit(true) })
		fast := medianFitMS(func() { fit(false) })
		report.Benchmarks = append(report.Benchmarks, mlBenchEntry{
			Name: "TreeFit", Config: "MaxDepth=700",
			BaselineMS: base, PresortedMS: fast, Speedup: base / fast,
		})
	}

	// Random forest at the paper deployment config (70 trees, depth 700).
	{
		fit := func(reference bool) *forest.Forest {
			cfg := forest.PaperConfig()
			cfg.Reference = reference
			f := forest.New(cfg)
			if err := f.Fit(x, y); err != nil {
				panic(err)
			}
			return f
		}
		a, b := fit(false), fit(true)
		for _, p := range probes {
			if a.PredictProba(p) != b.PredictProba(p) {
				return fmt.Errorf("mlbench: forest exact mode diverges from reference")
			}
		}
		base := medianFitMS(func() { fit(true) })
		fast := medianFitMS(func() { fit(false) })
		report.Benchmarks = append(report.Benchmarks, mlBenchEntry{
			Name: "ForestFit", Config: "paper config: Trees=70 MaxDepth=700",
			BaselineMS: base, PresortedMS: fast, Speedup: base / fast,
		})
	}

	// Gradient boosting in the detector's EGB shape.
	{
		fit := func(reference bool) *boost.Boost {
			bst := boost.New(boost.Config{Rounds: 100, MaxDepth: 3, Seed: 1, Reference: reference})
			if err := bst.Fit(x, y); err != nil {
				panic(err)
			}
			return bst
		}
		a, b := fit(false), fit(true)
		for _, p := range probes {
			if a.PredictProba(p) != b.PredictProba(p) {
				return fmt.Errorf("mlbench: boost exact mode diverges from reference")
			}
		}
		base := medianFitMS(func() { fit(true) })
		fast := medianFitMS(func() { fit(false) })
		report.Benchmarks = append(report.Benchmarks, mlBenchEntry{
			Name: "BoostFit", Config: "Rounds=100 MaxDepth=3",
			BaselineMS: base, PresortedMS: fast, Speedup: base / fast,
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range report.Benchmarks {
		fmt.Printf("%-10s %-40s baseline %8.1f ms  presorted %8.1f ms  speedup %.2fx\n",
			e.Name, e.Config, e.BaselineMS, e.PresortedMS, e.Speedup)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
