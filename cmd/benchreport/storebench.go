package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/imagehash"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
)

// The store bench pins the durability layer's cost model: WAL append
// throughput on a real disk directory at several group-commit settings,
// recovery (Open + full replay) time for a 30k-record log, and the
// checkpoint write path. Append cost is also expressed as the fraction
// of the serving pipeline's per-tweet budget it would consume — computed
// against the committed BENCH_e2e.json steady-state tweets/sec — which
// is the number the ≤10% durability-overhead budget is judged on.
const (
	// storeBenchReps is the number of timed passes per configuration;
	// the fastest is reported. Disk interference (writeback backlog,
	// noisy neighbours on shared machines) only ever slows a pass, so
	// best-of-N estimates the intrinsic cost far more stably than the
	// median does.
	storeBenchReps = 5
	// storeBenchRecords is the WAL log size, matching the e2e corpus.
	storeBenchRecords = 30000
	// storeBenchSeed drives record fabrication.
	storeBenchSeed = 11
	// storeBenchMeta fingerprints the bench store directories.
	storeBenchMeta = "benchreport-store"
	// storeRegressTolerance is the -storecheck failure threshold on
	// append and recovery records/sec. Looser than the CPU-bound e2e
	// check: these passes are fsync- and writeback-bound, and disk
	// timing swings far more run to run than the hot path does.
	storeRegressTolerance = 0.25
	// storeOverheadBudgetPct is the acceptance ceiling: at the largest
	// measured group-commit setting, WAL appends must consume at most
	// this percentage of the optimized pipeline's per-tweet budget.
	storeOverheadBudgetPct = 10.0
	// storeCheckpointBytes sizes the synthetic checkpoint payload,
	// on the order of a real mid-run pipeline snapshot.
	storeCheckpointBytes = 256 << 10
)

// storeSyncEverys are the measured group-commit settings: every append
// durable immediately, and two amortization levels. Measured largest
// first — the sync_every=1 pass grinds tens of thousands of fsyncs, and
// running it before the cheap configs lets its dirty-writeback backlog
// bleed into their timings.
var storeSyncEverys = []int{512, 64, 1}

// storeReport is the schema of BENCH_store.json.
type storeReport struct {
	Log        storeLogMeta       `json:"log"`
	E2E        storeE2ERef        `json:"e2e_reference"`
	Append     []storeAppendEntry `json:"append"`
	Recovery   storeRecoveryStats `json:"recovery"`
	Checkpoint storeCkptStats     `json:"checkpoint"`
}

type storeLogMeta struct {
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	Seed    int64  `json:"seed"`
	Note    string `json:"note"`
}

// storeE2ERef carries the serving-side numbers the overhead percentages
// are computed against: the fastest optimized tweets/sec in
// BENCH_e2e.json and that corpus' capture fraction (only captured
// tweets pay a WAL append).
type storeE2ERef struct {
	TweetsPerSec    float64 `json:"tweets_per_sec"`
	CaptureFraction float64 `json:"capture_fraction"`
}

type storeAppendEntry struct {
	SyncEvery     int     `json:"sync_every"`
	RecordsPerSec float64 `json:"records_per_sec"`
	MicrosPerRec  float64 `json:"micros_per_record"`
	// PipelineOverheadPct is the share of the steady-state per-tweet
	// budget WAL appends would claim at this setting:
	// capture_fraction * (e2e tweets/sec / append records/sec) * 100.
	PipelineOverheadPct float64 `json:"pipeline_overhead_pct"`
}

type storeRecoveryStats struct {
	Records       int     `json:"records"`
	Millis        float64 `json:"millis"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

type storeCkptStats struct {
	Bytes       int     `json:"bytes"`
	WriteMillis float64 `json:"write_millis"`
}

// genStoreRecords fabricates n capture records shaped like the streaming
// pipeline's: a mention tweet plus sender and receiver profile
// snapshots, with the e2e corpus' spam mix so text sizes and optional
// fields exercise the same codec branches real runs do.
func genStoreRecords(n int) []*store.CaptureRecord {
	rng := rand.New(rand.NewSource(storeBenchSeed))
	t0 := time.Date(2019, 6, 24, 0, 0, 0, 0, time.UTC)

	account := func(id int64, spammer bool) *socialnet.Account {
		a := &socialnet.Account{
			ID:               socialnet.AccountID(id),
			ScreenName:       fmt.Sprintf("user_%d", id),
			Name:             fmt.Sprintf("User %d", id),
			Description:      fmt.Sprintf("profile %d: tweets about topic %d", id, rng.Intn(40)),
			CreatedAt:        t0.Add(-time.Duration(rng.Intn(2000)+30) * 24 * time.Hour),
			FriendsCount:     rng.Intn(800),
			FollowersCount:   rng.Intn(2000),
			ListedCount:      rng.Intn(30),
			FavouritesCount:  rng.Intn(5000),
			StatusesCount:    rng.Intn(20000),
			ProfileImageSeed: rng.Int63(),
			ProfileImageHash: imagehash.Hash{Hi: rng.Uint64(), Lo: rng.Uint64()},
			CampaignID:       socialnet.NoCampaign,
		}
		if spammer {
			a.FriendsCount = 1500 + rng.Intn(3000)
			a.FollowersCount = rng.Intn(60)
			a.Description = fmt.Sprintf("get followers fast! visit promo site %d", rng.Intn(9))
			a.CampaignID = int(id % 7)
		}
		return a
	}

	recs := make([]*store.CaptureRecord, n)
	for i := range recs {
		spam := rng.Float64() < 0.30
		senderID := int64(rng.Intn(4000) + 1)
		receiverID := int64(rng.Intn(400) + 5000)
		t := socialnet.Tweet{
			ID:         socialnet.TweetID(1_000_000 + i),
			AuthorID:   socialnet.AccountID(senderID),
			CreatedAt:  t0.Add(time.Duration(i) * 400 * time.Millisecond),
			Mentions:   []socialnet.AccountID{socialnet.AccountID(receiverID)},
			Spam:       spam,
			CampaignID: socialnet.NoCampaign,
		}
		if spam {
			t.Text = fmt.Sprintf("FREE followers now, claim code %d at our site", rng.Intn(9000))
			t.URLs = []string{fmt.Sprintf("https://promo.example/%d", rng.Intn(500))}
			t.Hashtags = []string{"free", "deal"}
			t.CampaignID = int(senderID % 7)
		} else {
			t.Text = fmt.Sprintf("thinking about topic %d over coffee today", rng.Intn(4000))
			if rng.Float64() < 0.3 {
				t.Hashtags = []string{fmt.Sprintf("tag%d", rng.Intn(50))}
			}
		}
		recs[i] = &store.CaptureRecord{
			Tweet:    t,
			Sender:   account(senderID, spam),
			Receiver: account(receiverID, false),
			Groups:   []int{rng.Intn(24)},
		}
	}
	return recs
}

// storeDirBytes sums the on-disk size of a bench store directory.
func storeDirBytes(dir string) int64 {
	var total int64
	_ = filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// storeAppendPass writes every record to a fresh store at the given
// group-commit setting and returns the wall seconds for append + final
// sync + close, plus the directory it wrote (left for the caller).
func storeAppendPass(dir string, recs []*store.CaptureRecord, syncEvery int) (float64, error) {
	st, _, err := store.Open(store.Options{Dir: dir, SyncEvery: syncEvery, Meta: storeBenchMeta})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for _, r := range recs {
		rc := *r // Append assigns Seq; keep the template reusable
		if err := st.AppendCapture(&rc); err != nil {
			_ = st.Close()
			return 0, err
		}
	}
	if err := st.Sync(); err != nil {
		_ = st.Close()
		return 0, err
	}
	secs := time.Since(start).Seconds()
	return secs, st.Close()
}

// storeBest returns the fastest of a small sample.
func storeBest(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[0]
}

// storeRun measures every configuration and assembles the report. The
// e2e reference is read from BENCH_e2e.json next to the output path.
func storeRun(outPath string) (*storeReport, error) {
	e2eRef, capFrac, err := storeE2EReference(filepath.Join(filepath.Dir(outPath), "BENCH_e2e.json"))
	if err != nil {
		return nil, err
	}
	recs := genStoreRecords(storeBenchRecords)

	scratch, err := os.MkdirTemp("", "phstorebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	report := &storeReport{
		Log: storeLogMeta{
			Records: storeBenchRecords,
			Seed:    storeBenchSeed,
			Note: fmt.Sprintf("synthetic capture WAL on local disk; best of %d passes per config",
				storeBenchReps),
		},
		E2E: storeE2ERef{TweetsPerSec: e2eRef, CaptureFraction: capFrac},
	}

	// Append throughput per group-commit setting. One warm-up pass per
	// setting, then timed passes into fresh directories. Group-commit
	// passes cost ~100ms, so they get many reps — the min needs enough
	// samples to land in a quiet window on a shared machine; only the
	// fsync-per-record config is expensive enough to cap at the base
	// rep count.
	var recoveryDir string
	for _, se := range storeSyncEverys {
		reps := storeBenchReps * 4
		if se == 1 {
			reps = storeBenchReps
		}
		secs := make([]float64, 0, reps)
		for rep := 0; rep <= reps; rep++ {
			dir := filepath.Join(scratch, fmt.Sprintf("append-%d-%d", se, rep))
			s, err := storeAppendPass(dir, recs, se)
			if err != nil {
				return nil, fmt.Errorf("storebench: append sync_every=%d: %w", se, err)
			}
			if rep == 0 {
				continue // warm-up
			}
			secs = append(secs, s)
			if report.Log.Bytes == 0 {
				report.Log.Bytes = storeDirBytes(dir)
			}
			recoveryDir = dir // any completed log works for recovery
		}
		med := storeBest(secs)
		rps := storeBenchRecords / med
		report.Append = append(report.Append, storeAppendEntry{
			SyncEvery:           se,
			RecordsPerSec:       rps,
			MicrosPerRec:        med / storeBenchRecords * 1e6,
			PipelineOverheadPct: capFrac * (e2eRef / rps) * 100,
		})
	}
	sort.Slice(report.Append, func(i, j int) bool {
		return report.Append[i].SyncEvery < report.Append[j].SyncEvery
	})

	// Recovery: Open replays the full 30k-record log. Open mutates
	// nothing (the segment is created lazily on first append), so the
	// same directory can be replayed repeatedly.
	recSecs := make([]float64, 0, storeBenchReps*2)
	for rep := 0; rep <= storeBenchReps*2; rep++ {
		start := time.Now()
		st, rec, err := store.Open(store.Options{Dir: recoveryDir, Meta: storeBenchMeta})
		if err != nil {
			return nil, fmt.Errorf("storebench: recovery open: %w", err)
		}
		secs := time.Since(start).Seconds()
		n := len(rec.Records)
		if err := st.Close(); err != nil {
			return nil, err
		}
		if n != storeBenchRecords {
			return nil, fmt.Errorf("storebench: recovery replayed %d records, want %d", n, storeBenchRecords)
		}
		if rep > 0 {
			recSecs = append(recSecs, secs)
		}
	}
	med := storeBest(recSecs)
	report.Recovery = storeRecoveryStats{
		Records:       storeBenchRecords,
		Millis:        med * 1e3,
		RecordsPerSec: storeBenchRecords / med,
	}

	// Checkpoint write: a realistic-size component payload through the
	// full write-temp / fsync / rename / prune path.
	blob := make([]byte, storeCheckpointBytes)
	rand.New(rand.NewSource(storeBenchSeed)).Read(blob)
	ckSecs := make([]float64, 0, storeBenchReps)
	for rep := 0; rep <= storeBenchReps; rep++ {
		dir := filepath.Join(scratch, fmt.Sprintf("ckpt-%d", rep))
		st, _, err := store.Open(store.Options{Dir: dir, Meta: storeBenchMeta})
		if err != nil {
			return nil, err
		}
		if err := st.AppendCapture(&store.CaptureRecord{Tweet: recs[0].Tweet}); err != nil {
			return nil, err
		}
		start := time.Now()
		err = st.WriteCheckpoint(&store.Checkpoint{
			Seq:            st.Seq(),
			TweetWatermark: int64(recs[0].Tweet.ID),
			Components:     map[string][]byte{"captures": blob[:192<<10], "labels": blob[192<<10:]},
		})
		secs := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("storebench: checkpoint: %w", err)
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		if rep > 0 {
			ckSecs = append(ckSecs, secs)
		}
	}
	report.Checkpoint = storeCkptStats{
		Bytes:       storeCheckpointBytes,
		WriteMillis: storeBest(ckSecs) * 1e3,
	}
	return report, nil
}

// storeE2EReference extracts the steady-state serving rate (fastest
// optimized tweets/sec across worker counts) and the capture fraction
// from the committed end-to-end baseline.
func storeE2EReference(path string) (tweetsPerSec, captureFraction float64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("storebench: e2e reference: %w", err)
	}
	var e2e e2eReport
	if err := json.Unmarshal(data, &e2e); err != nil {
		return 0, 0, fmt.Errorf("storebench: e2e reference %s: %w", path, err)
	}
	for _, w := range e2e.Workers {
		if w.Optimized.TweetsPerSec > tweetsPerSec {
			tweetsPerSec = w.Optimized.TweetsPerSec
		}
	}
	if tweetsPerSec == 0 || e2e.Corpus.Tweets == 0 {
		return 0, 0, fmt.Errorf("storebench: e2e reference %s has no usable measurements", path)
	}
	return tweetsPerSec, float64(e2e.Corpus.Captures) / float64(e2e.Corpus.Tweets), nil
}

// storePrint renders the per-config lines shared by bench and check.
func storePrint(r *storeReport) {
	for _, a := range r.Append {
		fmt.Printf("sync_every=%-3d %9.0f rec/s  %7.2f µs/rec  pipeline overhead %6.2f%%\n",
			a.SyncEvery, a.RecordsPerSec, a.MicrosPerRec, a.PipelineOverheadPct)
	}
	fmt.Printf("recovery: %d records in %.1f ms (%.0f rec/s)   checkpoint: %d KiB in %.2f ms\n",
		r.Recovery.Records, r.Recovery.Millis, r.Recovery.RecordsPerSec,
		r.Checkpoint.Bytes>>10, r.Checkpoint.WriteMillis)
}

// runStoreBench regenerates the BENCH_store.json baseline.
func runStoreBench(path string) error {
	report, err := storeRun(path)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	storePrint(report)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runStoreCheck re-measures the durability layer and fails when (a) WAL
// appends at the largest group-commit setting would consume more than
// storeOverheadBudgetPct of the serving pipeline's per-tweet budget, or
// (b) append or recovery records/sec regressed more than
// storeRegressTolerance against the committed baseline. Set
// PH_SKIP_STORE_CHECK to skip on shared or throttled machines.
func runStoreCheck(path string) error {
	if os.Getenv("PH_SKIP_STORE_CHECK") != "" {
		fmt.Println("storecheck: skipped (PH_SKIP_STORE_CHECK set)")
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old storeReport
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("storecheck: %s: %w", path, err)
	}
	fresh, err := storeRun(path)
	if err != nil {
		return err
	}
	storePrint(fresh)

	failed := false
	budget := fresh.Append[0]
	for _, a := range fresh.Append[1:] {
		if a.SyncEvery > budget.SyncEvery {
			budget = a
		}
	}
	if budget.PipelineOverheadPct > storeOverheadBudgetPct {
		fmt.Printf("FAIL: sync_every=%d WAL overhead %.2f%% exceeds the %.0f%% pipeline budget\n",
			budget.SyncEvery, budget.PipelineOverheadPct, storeOverheadBudgetPct)
		failed = true
	}
	for _, oe := range old.Append {
		for _, fe := range fresh.Append {
			if fe.SyncEvery != oe.SyncEvery {
				continue
			}
			if delta := fe.RecordsPerSec/oe.RecordsPerSec - 1; delta < -storeRegressTolerance {
				fmt.Printf("FAIL: sync_every=%d append %1.0f rec/s regressed %+.1f%% vs recorded %1.0f\n",
					oe.SyncEvery, fe.RecordsPerSec, delta*100, oe.RecordsPerSec)
				failed = true
			}
		}
	}
	if old.Recovery.RecordsPerSec > 0 {
		if delta := fresh.Recovery.RecordsPerSec/old.Recovery.RecordsPerSec - 1; delta < -storeRegressTolerance {
			fmt.Printf("FAIL: recovery %1.0f rec/s regressed %+.1f%% vs recorded %1.0f\n",
				fresh.Recovery.RecordsPerSec, delta*100, old.Recovery.RecordsPerSec)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("storecheck: durability baseline violated vs %s", path)
	}
	fmt.Println("storecheck: ok")
	return nil
}
