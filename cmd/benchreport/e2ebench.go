package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/features"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml/forest"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// The end-to-end bench pins the serving hot path: NDJSON decode →
// mention filter → feature extraction → micro-batched classification.
// The baseline runs the pre-optimization stack (encoding/json per line,
// owning DecodeTweet, pointer-tree forest); the optimized path runs the
// zero-alloc stack (StreamDecoder + TweetScratch, clone-on-hit, flattened
// contiguous forest). Both produce bit-identical verdict streams, which
// the bench asserts before recording a single number.
const (
	// e2eBenchReps is the number of timed passes per path; the median
	// wall time and the minimum allocation count are reported.
	e2eBenchReps = 3
	// e2eTweets is the NDJSON corpus size.
	e2eTweets = 30000
	// e2eAccounts is the synthetic profile population.
	e2eAccounts = 400
	// e2eSeed drives corpus generation.
	e2eSeed = 7
	// e2eClassifyBatch is the classification micro-batch size,
	// matching the streaming pipeline's flush granularity order.
	e2eClassifyBatch = 512
	// e2eTrainCap bounds the forest training set so single-worker fits
	// stay cheap.
	e2eTrainCap = 2000
	// e2eRegressTolerance is the -e2echeck failure threshold on the
	// optimized path's tweets/sec.
	e2eRegressTolerance = 0.10
)

// e2eReport is the schema of BENCH_e2e.json.
type e2eReport struct {
	Corpus  e2eCorpusMeta    `json:"corpus"`
	Workers []e2eWorkerEntry `json:"workers"`
}

type e2eCorpusMeta struct {
	Tweets   int    `json:"tweets"`
	Accounts int    `json:"accounts"`
	Captures int    `json:"captures"`
	Seed     int64  `json:"seed"`
	Note     string `json:"note"`
}

type e2eWorkerEntry struct {
	Workers   int          `json:"workers"`
	Baseline  e2ePathStats `json:"baseline"`
	Optimized e2ePathStats `json:"optimized"`
	Speedup   float64      `json:"speedup"`
}

type e2ePathStats struct {
	TweetsPerSec   float64 `json:"tweets_per_sec"`
	AllocsPerTweet float64 `json:"allocs_per_tweet"`
}

// e2eCorpus is the fixed synthetic stream every run replays: NDJSON
// lines, the profile table stream processing resolves senders and
// receivers against, and the monitored (pseudo-honeypot) receiver set.
type e2eCorpus struct {
	lines     [][]byte
	accounts  map[socialnet.AccountID]*socialnet.Account
	monitored map[socialnet.AccountID]bool
}

// genE2ECorpus fabricates the corpus: 400 profiles (10% spammers), 30k
// tweets where spammers target the monitored accounts far more often
// than organic traffic does — the skew the pseudo-honeypot exploits —
// with oracle labels carried on the wire for training.
func genE2ECorpus() *e2eCorpus {
	rng := rand.New(rand.NewSource(e2eSeed))
	t0 := time.Date(2019, 6, 24, 0, 0, 0, 0, time.UTC)

	users := make([]twitterapi.User, e2eAccounts)
	var spammerIDs, monitoredIDs []int64
	for i := range users {
		id := int64(i + 1)
		spammer := id%10 == 0
		age := time.Duration(rng.Intn(2000)+30) * 24 * time.Hour
		u := twitterapi.User{
			ID:               id,
			ScreenName:       fmt.Sprintf("user_%d", id),
			Name:             fmt.Sprintf("User %d", id),
			Description:      fmt.Sprintf("profile %d: tweets about topic %d", id, rng.Intn(40)),
			CreatedAt:        t0.Add(-age).Format(time.RFC3339),
			FriendsCount:     rng.Intn(800),
			FollowersCount:   rng.Intn(2000),
			ListedCount:      rng.Intn(30),
			FavouritesCount:  rng.Intn(5000),
			StatusesCount:    rng.Intn(20000),
			Verified:         !spammer && rng.Float64() < 0.02,
			ProfileImageHash: fmt.Sprintf("%016x", rng.Uint64()),
		}
		if spammer {
			u.FriendsCount = 1500 + rng.Intn(3000)
			u.FollowersCount = rng.Intn(60)
			u.DefaultProfile = rng.Float64() < 0.5
			u.Description = fmt.Sprintf("get followers fast! visit promo site %d", rng.Intn(9))
			spammerIDs = append(spammerIDs, id)
		} else if id%9 == 1 {
			monitoredIDs = append(monitoredIDs, id)
		}
		users[i] = u
	}

	accounts := make(map[socialnet.AccountID]*socialnet.Account, e2eAccounts)
	for i := range users {
		a := twitterapi.DecodeUser(&users[i])
		accounts[a.ID] = a
	}
	monitored := make(map[socialnet.AccountID]bool, len(monitoredIDs))
	for _, id := range monitoredIDs {
		monitored[socialnet.AccountID(id)] = true
	}

	spamTexts := []string{
		"FREE followers now, claim code %d at our site",
		"you won prize #%d!! click fast",
		"boost your account %dx overnight, limited slots",
		"earn $%d/day from home, no experience",
	}
	sources := []string{"web", "mobile", "third-party", "other"}

	lines := make([][]byte, 0, e2eTweets)
	for i := 0; i < e2eTweets; i++ {
		isSpam := rng.Float64() < 0.30
		var author twitterapi.User
		if isSpam {
			author = users[spammerIDs[rng.Intn(len(spammerIDs))]-1]
		} else {
			for {
				author = users[rng.Intn(e2eAccounts)]
				if author.ID%10 != 0 {
					break
				}
			}
		}
		kind := "tweet"
		switch r := rng.Float64(); {
		case r < 0.12:
			kind = "retweet"
		case r < 0.17:
			kind = "quote"
		}
		wt := twitterapi.Tweet{
			ID:        int64(1_000_000 + i),
			CreatedAt: t0.Add(time.Duration(i) * 400 * time.Millisecond).Format(time.RFC3339Nano),
			Kind:      kind,
			Source:    sources[rng.Intn(len(sources))],
			User:      author,
		}
		if isSpam {
			wt.Text = fmt.Sprintf(spamTexts[rng.Intn(len(spamTexts))], rng.Intn(9000)+1000)
			wt.Entities.URLs = []string{fmt.Sprintf("https://promo.example/%d", rng.Intn(500))}
			wt.Entities.Hashtags = []string{"free", "deal"}
		} else {
			wt.Text = fmt.Sprintf("thinking about topic %d over coffee today", rng.Intn(4000))
			if rng.Float64() < 0.3 {
				wt.Entities.Hashtags = []string{fmt.Sprintf("tag%d", rng.Intn(50))}
			}
		}
		addMention := func(id int64) {
			wt.Entities.Mentions = append(wt.Entities.Mentions,
				twitterapi.Mention{ID: id, ScreenName: users[id-1].ScreenName})
		}
		hitP := 0.02
		if isSpam {
			hitP = 0.20
		}
		if rng.Float64() < hitP {
			addMention(monitoredIDs[rng.Intn(len(monitoredIDs))])
		}
		for n := rng.Intn(2); n > 0; n-- {
			addMention(int64(rng.Intn(e2eAccounts)) + 1)
		}
		spamFlag := isSpam
		camp := socialnet.NoCampaign
		if isSpam {
			camp = int(author.ID % 7)
		}
		wt.Spam = &spamFlag
		wt.CampaignID = &camp
		b, err := json.Marshal(wt)
		if err != nil {
			panic(err)
		}
		lines = append(lines, b)
	}
	return &e2eCorpus{lines: lines, accounts: accounts, monitored: monitored}
}

// runE2EPath replays the corpus through one full serving pass and
// returns the verdict stream. Both paths share the filter, extraction,
// and micro-batch structure; they differ only in the decode stack and
// the forest's predictor (pointer trees vs flattened pool), so verdict
// equality isolates exactly the layers the optimization replaced.
func runE2EPath(c *e2eCorpus, clf *forest.Forest, optimized bool) []bool {
	ext := features.NewExtractor()
	attrKeys := []string{"random"}
	dec := twitterapi.NewStreamDecoder()
	var conv twitterapi.TweetScratch

	verdicts := make([]bool, 0, len(c.lines)/3)
	pend := make([]features.Vector, 0, e2eClassifyBatch)
	views := make([][]float64, 0, e2eClassifyBatch)
	out := make([]bool, 0, e2eClassifyBatch)
	flush := func() {
		if len(pend) == 0 {
			return
		}
		views = views[:0]
		for i := range pend {
			views = append(views, pend[i][:])
		}
		out = clf.PredictBatchInto(views, out)
		verdicts = append(verdicts, out...)
		pend = pend[:0]
	}

	for _, line := range c.lines {
		var st *socialnet.Tweet
		if optimized {
			wt, err := dec.Decode(line)
			if err != nil {
				panic(fmt.Sprintf("e2ebench: decode: %v", err))
			}
			st = conv.Convert(wt)
		} else {
			var wt twitterapi.Tweet
			if err := json.Unmarshal(line, &wt); err != nil {
				panic(fmt.Sprintf("e2ebench: unmarshal: %v", err))
			}
			st, _ = twitterapi.DecodeTweet(&wt)
		}
		var recv *socialnet.Account
		for _, m := range st.Mentions {
			if c.monitored[m] {
				recv = c.accounts[m]
				break
			}
		}
		if recv == nil {
			continue
		}
		if optimized {
			// A hit is retained past the callback (the extractor keys
			// behavioural state on the text), so the scratch tweet is
			// cloned exactly as the capture pipeline clones it. Misses —
			// the vast majority — stay allocation-free.
			st = st.Clone()
		}
		vec := ext.Extract(features.Observation{
			Tweet:    st,
			Sender:   c.accounts[st.AuthorID],
			Receiver: recv,
			AttrKeys: attrKeys,
		})
		pend = append(pend, vec)
		if len(pend) == e2eClassifyBatch {
			flush()
		}
	}
	flush()
	return verdicts
}

// e2eTrainingData extracts labeled vectors from the corpus' capture
// stream (oracle labels ride the wire) for fitting the bench forests.
func e2eTrainingData(c *e2eCorpus) ([][]float64, []bool) {
	ext := features.NewExtractor()
	attrKeys := []string{"random"}
	dec := twitterapi.NewStreamDecoder()
	var conv twitterapi.TweetScratch
	var x [][]float64
	var y []bool
	for _, line := range c.lines {
		wt, err := dec.Decode(line)
		if err != nil {
			panic(err)
		}
		st := conv.Convert(wt)
		hit := false
		for _, m := range st.Mentions {
			if c.monitored[m] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		st = st.Clone()
		vec := ext.Extract(features.Observation{
			Tweet:    st,
			Sender:   c.accounts[st.AuthorID],
			AttrKeys: attrKeys,
		})
		row := make([]float64, len(vec))
		copy(row, vec[:])
		x = append(x, row)
		y = append(y, st.Spam)
		if len(x) == e2eTrainCap {
			break
		}
	}
	return x, y
}

// e2eFitForest fits a paper-config forest on the training set. pointer
// selects the pointer-tree predictor (the baseline oracle); otherwise
// Fit compiles the flattened pool. Fitted trees are bit-identical either
// way, so verdict differences can only come from the predictor layer.
func e2eFitForest(x [][]float64, y []bool, workers int, pointer bool) *forest.Forest {
	cfg := forest.PaperConfig()
	cfg.Workers = workers
	cfg.PointerPredict = pointer
	f := forest.New(cfg)
	if err := f.Fit(x, y); err != nil {
		panic(err)
	}
	return f
}

// e2eMeasure times full corpus passes: median wall time of e2eBenchReps
// runs for tweets/sec, minimum Mallocs delta for allocs/tweet (the
// counts are deterministic; min discards background-goroutine noise).
func e2eMeasure(c *e2eCorpus, clf *forest.Forest, optimized bool) e2ePathStats {
	runE2EPath(c, clf, optimized) // warm-up
	secs := make([]float64, e2eBenchReps)
	allocs := make([]float64, e2eBenchReps)
	var ms runtime.MemStats
	for r := range secs {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		start := time.Now()
		runE2EPath(c, clf, optimized)
		secs[r] = time.Since(start).Seconds()
		runtime.ReadMemStats(&ms)
		allocs[r] = float64(ms.Mallocs - m0)
	}
	sort.Float64s(secs)
	sort.Float64s(allocs)
	n := float64(len(c.lines))
	return e2ePathStats{
		TweetsPerSec:   n / secs[e2eBenchReps/2],
		AllocsPerTweet: allocs[0] / n,
	}
}

// e2eRun builds the corpus, fits the per-worker forest pairs, verifies
// baseline and optimized verdict streams are identical, and measures
// both paths at workers 1, 2, and 8.
func e2eRun() (*e2eReport, error) {
	c := genE2ECorpus()
	x, y := e2eTrainingData(c)
	report := &e2eReport{
		Corpus: e2eCorpusMeta{
			Tweets:   len(c.lines),
			Accounts: e2eAccounts,
			Seed:     e2eSeed,
			Note: fmt.Sprintf("synthetic NDJSON stream; capture->features->classify; "+
				"median of %d passes per mode", e2eBenchReps),
		},
	}
	for _, w := range []int{1, 2, 8} {
		base := e2eFitForest(x, y, w, true)
		opt := e2eFitForest(x, y, w, false)
		vb := runE2EPath(c, base, false)
		vo := runE2EPath(c, opt, true)
		if len(vb) != len(vo) {
			return nil, fmt.Errorf("e2ebench: capture counts diverge at workers=%d: %d vs %d", w, len(vb), len(vo))
		}
		for i := range vb {
			if vb[i] != vo[i] {
				return nil, fmt.Errorf("e2ebench: verdict %d diverges at workers=%d", i, w)
			}
		}
		report.Corpus.Captures = len(vb)
		bs := e2eMeasure(c, base, false)
		ops := e2eMeasure(c, opt, true)
		report.Workers = append(report.Workers, e2eWorkerEntry{
			Workers:   w,
			Baseline:  bs,
			Optimized: ops,
			Speedup:   ops.TweetsPerSec / bs.TweetsPerSec,
		})
	}
	return report, nil
}

// runE2EBench regenerates the BENCH_e2e.json baseline.
func runE2EBench(path string) error {
	report, err := e2eRun()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range report.Workers {
		fmt.Printf("workers=%d  baseline %9.0f tw/s %6.1f allocs/tw   optimized %9.0f tw/s %6.2f allocs/tw   speedup %.2fx\n",
			e.Workers, e.Baseline.TweetsPerSec, e.Baseline.AllocsPerTweet,
			e.Optimized.TweetsPerSec, e.Optimized.AllocsPerTweet, e.Speedup)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runE2ECheck reruns the end-to-end measurement and fails when the
// optimized path's tweets/sec regressed more than e2eRegressTolerance
// against the committed baseline file. PH_SKIP_E2E_CHECK skips the
// check (for constrained or shared machines where timing is unstable).
func runE2ECheck(path string) error {
	if os.Getenv("PH_SKIP_E2E_CHECK") != "" {
		fmt.Println("e2echeck: skipped (PH_SKIP_E2E_CHECK set)")
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old e2eReport
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("e2echeck: %s: %w", path, err)
	}
	fresh, err := e2eRun()
	if err != nil {
		return err
	}
	failed := false
	for _, oe := range old.Workers {
		var fe *e2eWorkerEntry
		for i := range fresh.Workers {
			if fresh.Workers[i].Workers == oe.Workers {
				fe = &fresh.Workers[i]
				break
			}
		}
		if fe == nil {
			return fmt.Errorf("e2echeck: no fresh measurement for workers=%d", oe.Workers)
		}
		delta := fe.Optimized.TweetsPerSec/oe.Optimized.TweetsPerSec - 1
		status := "ok"
		if delta < -e2eRegressTolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("workers=%d  recorded %9.0f tw/s  fresh %9.0f tw/s  delta %+6.1f%%  %s\n",
			oe.Workers, oe.Optimized.TweetsPerSec, fe.Optimized.TweetsPerSec, delta*100, status)
	}
	if failed {
		return fmt.Errorf("e2echeck: optimized tweets/sec regressed more than %.0f%% vs %s",
			e2eRegressTolerance*100, path)
	}
	return nil
}
