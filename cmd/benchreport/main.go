// Command benchreport regenerates the paper's evaluation tables and
// figures on the simulated substrate and prints them as text.
//
// Usage:
//
//	benchreport [-scale small|medium|full] [-table N] [-figure N]
//
// Without -table/-figure every experiment is regenerated (Tables II–VII
// and Figures 2–6). The heavy simulation phases are shared across
// experiments, so requesting everything costs little more than the largest
// single phase.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "small", "experiment scale: small, medium, or full")
		table     = flag.Int("table", 0, "regenerate only Table N (2-7)")
		figure    = flag.Int("figure", 0, "regenerate only Figure N (2-6)")
		format    = flag.String("format", "text", "output format: text, csv, or json")
		outDir    = flag.String("out", "", "also write each experiment as a CSV file into this directory")
		mlBench   = flag.String("mlbench", "", "skip the experiment tables and regenerate the ML training baseline JSON at this path (e.g. BENCH_ml.json)")
		e2eBench  = flag.String("e2ebench", "", "skip the experiment tables and regenerate the end-to-end ingest+inference baseline JSON at this path (e.g. BENCH_e2e.json)")
		e2eCheck  = flag.String("e2echeck", "", "measure the end-to-end hot path fresh and fail if optimized tweets/sec regressed >10% vs this baseline JSON (PH_SKIP_E2E_CHECK=1 skips)")
		stBench   = flag.String("storebench", "", "skip the experiment tables and regenerate the durable-store baseline JSON at this path (e.g. BENCH_store.json)")
		stCheck   = flag.String("storecheck", "", "measure WAL append/recovery fresh and fail on regression or a blown overhead budget vs this baseline JSON (PH_SKIP_STORE_CHECK=1 skips)")
		shBench   = flag.String("shardbench", "", "skip the experiment tables and regenerate the shard-scaling baseline JSON at this path (e.g. BENCH_shard.json)")
		shCheck   = flag.String("shardcheck", "", "measure the shard-count scaling curve fresh and fail if the 4-shard speedup misses the core-count-tiered floor vs this baseline JSON (PH_SKIP_SHARD_CHECK=1 skips)")
		inBench   = flag.String("ingestbench", "", "skip the experiment tables and regenerate the source-ingest baseline JSON at this path (e.g. BENCH_ingest.json)")
		inCheck   = flag.String("ingestcheck", "", "measure source-ingest overhead fresh and fail if the single-child mux costs more than 5% of direct-source throughput vs this baseline JSON (PH_SKIP_INGEST_CHECK=1 skips)")
	)
	flag.Parse()
	if *mlBench != "" {
		return runMLBench(*mlBench)
	}
	if *e2eBench != "" {
		return runE2EBench(*e2eBench)
	}
	if *e2eCheck != "" {
		return runE2ECheck(*e2eCheck)
	}
	if *stBench != "" {
		return runStoreBench(*stBench)
	}
	if *stCheck != "" {
		return runStoreCheck(*stCheck)
	}
	if *shBench != "" {
		return runShardBench(*shBench)
	}
	if *shCheck != "" {
		return runShardCheck(*shCheck)
	}
	if *inBench != "" {
		return runIngestBench(*inBench)
	}
	if *inCheck != "" {
		return runIngestCheck(*inCheck)
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	r := experiments.NewRunner(scale)
	// The banner goes to stderr for machine-readable formats, keeping
	// stdout pure CSV/JSON.
	banner := os.Stdout
	if *format != "text" {
		banner = os.Stderr
	}
	fmt.Fprintf(banner, "benchreport: scale=%s (world: %d accounts; main run: %d h × %d-node network)\n\n",
		scale.Name, scale.World.NumAccounts, scale.MainHours,
		core.TotalNodes(core.StandardSpecs(scale.NodesPerValue)))

	wantTable := func(n int) bool { return *table == n || (*table == 0 && *figure == 0) }
	wantFigure := func(n int) bool { return *figure == n || (*table == 0 && *figure == 0) }

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	fileSeq := 0
	type renderable interface {
		Render() string
		WriteCSV(io.Writer) error
	}
	saveCSV := func(v renderable) error {
		if *outDir == "" {
			return nil
		}
		fileSeq++
		name := filepath.Join(*outDir, fmt.Sprintf("%02d-%s.csv", fileSeq, slugOf(v.Render())))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		return v.WriteCSV(f)
	}
	show := func(v renderable, err error) error {
		if err != nil {
			return err
		}
		if err := saveCSV(v); err != nil {
			return err
		}
		switch *format {
		case "csv":
			if err := v.WriteCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		case "json":
			data, err := json.Marshal(v)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		default:
			fmt.Println(v.Render())
		}
		return nil
	}

	if wantTable(2) {
		t, err := r.TableII()
		if err := show(t, err); err != nil {
			return err
		}
	}
	if wantTable(3) {
		t, err := r.TableIII()
		if err := show(t, err); err != nil {
			return err
		}
	}
	if wantTable(4) {
		t, err := r.TableIV()
		if err := show(t, err); err != nil {
			return err
		}
	}
	if wantTable(4) {
		t, err := r.TopFeatures(10)
		if err := show(t, err); err != nil {
			return err
		}
	}
	if wantTable(5) {
		t, err := r.TableV()
		if err := show(t, err); err != nil {
			return err
		}
	}
	if wantTable(6) {
		t, err := r.TableVI()
		if err := show(t, err); err != nil {
			return err
		}
	}
	if wantTable(7) {
		t, err := r.TableVII()
		if err := show(t, err); err != nil {
			return err
		}
		if *format == "text" {
			vsLit, vsSim, serr := r.SpeedupOverLiterature()
			if serr != nil {
				return serr
			}
			fmt.Printf("advanced pseudo-honeypot PGE speedup: %.1fx vs best literature honeypot (absolute PGE is scale-dependent; see EXPERIMENTS.md)\n", vsLit)
			if vsSim > 0 {
				fmt.Printf("speedup vs the traditional honeypot simulated in the same world: %.1fx\n\n", vsSim)
			} else {
				fmt.Printf("the traditional honeypot simulated in the same world captured no spammers at all\n\n")
			}
		}
	}
	if wantFigure(2) {
		f, err := r.Figure2()
		if err := show(f, err); err != nil {
			return err
		}
	}
	if wantFigure(3) {
		panels, err := r.Figure3()
		if err != nil {
			return err
		}
		for _, p := range panels {
			if err := show(p, nil); err != nil {
				return err
			}
		}
	}
	if wantFigure(4) {
		f, err := r.Figure4()
		if err := show(f, err); err != nil {
			return err
		}
	}
	if wantFigure(5) {
		f, err := r.Figure5()
		if err := show(f, err); err != nil {
			return err
		}
	}
	if wantFigure(6) {
		f, err := r.Figure6()
		if err := show(f, err); err != nil {
			return err
		}
	}
	return nil
}

// slugOf derives a short filesystem-safe name from a render's first line.
func slugOf(rendered string) string {
	line := rendered
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	var b strings.Builder
	for _, r := range strings.ToLower(line) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			if b.Len() > 0 && !strings.HasSuffix(b.String(), "-") {
				b.WriteByte('-')
			}
		}
		if b.Len() >= 40 {
			break
		}
	}
	slug := strings.Trim(b.String(), "-")
	if slug == "" {
		slug = "experiment"
	}
	return slug
}
