package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/source"
)

// The ingest bench pins the source abstraction's cost claim: consuming
// the firehose through a Source — and in particular through a MuxSource
// wrapping it — adds (almost) nothing over subscribing to the engine
// directly. It pre-generates one fixed tweet workload, then replays it
// through a scripted in-memory source at three topologies:
//
//   - direct: the source delivers straight to the monitor's match path.
//   - mux1: the same source wrapped in a single-child mux — child 0 is
//     an identity pass-through, so this isolates the mux machinery
//     (per-hour buffering, the merge sort, delivery fan-out).
//   - mux2: two children carrying the workload split in half — the
//     realistic multi-source layout, paying namespacing (tweet clones)
//     for the second child on top of the merge.
//
// Per-post work is Monitor.Match, the stage every ingested post hits in
// production; heavier stages only see the matched subset, so Match is
// the honest denominator for ingest overhead.
const (
	ingestBenchReps   = 5
	ingestBenchReplay = 4
	ingestBenchHours  = 6
	ingestBenchNodes  = 250
)

// ingestReport is the schema of BENCH_ingest.json.
type ingestReport struct {
	Workload ingestWorkloadMeta `json:"workload"`
	Modes    []ingestEntry      `json:"modes"`
}

type ingestWorkloadMeta struct {
	Posts int    `json:"posts"`
	Hours int    `json:"hours"`
	Cores int    `json:"cores"`
	Note  string `json:"note"`
}

type ingestEntry struct {
	Mode        string  `json:"mode"`
	PostsPerSec float64 `json:"posts_per_sec"`
	// OverheadVsDirect is (direct - this) / direct; negative means this
	// mode measured faster than direct (timer noise).
	OverheadVsDirect float64 `json:"overhead_vs_direct"`
}

// ingestMuxOverheadMax is the bench-ingest-check gate: the single-child
// mux may cost at most this fraction of direct-source throughput.
const ingestMuxOverheadMax = 0.05

// memSource replays a pre-generated per-hour tweet schedule through the
// Source interface — the scripted stand-in that keeps the bench timing
// ingest delivery, not world generation.
type memSource struct {
	id    string
	world *socialnet.World
	hours [][]*socialnet.Tweet
	start time.Time
	hooks []func(hour int, now time.Time)
	subs  []func(source.Post)
	hour  int
}

func (m *memSource) ID() string { return m.id }
func (m *memSource) OnHourStart(fn func(hour int, now time.Time)) {
	m.hooks = append(m.hooks, fn)
}
func (m *memSource) Subscribe(fn func(p source.Post)) (cancel func()) {
	m.subs = append(m.subs, fn)
	i := len(m.subs) - 1
	return func() { m.subs[i] = nil }
}
func (m *memSource) RunHours(n int) error {
	for i := 0; i < n; i++ {
		now := m.Now()
		for _, fn := range m.hooks {
			fn(m.hour, now)
		}
		if m.hour < len(m.hours) {
			for _, t := range m.hours[m.hour] {
				for _, fn := range m.subs {
					if fn != nil {
						fn(source.Post{Tweet: t, Origin: m.id})
					}
				}
			}
		}
		m.hour++
	}
	return nil
}
func (m *memSource) Lookup(id socialnet.AccountID) *socialnet.Account {
	return m.world.Account(id)
}
func (m *memSource) Now() time.Time {
	return m.start.Add(time.Duration(m.hour) * time.Hour)
}
func (m *memSource) Rotation(int) []int { return nil }
func (m *memSource) Close() error      { return nil }

// genIngestWorkload runs the simulation once and collects every tweet by
// hour — the full firehose, since every post pays the match cost.
func genIngestWorkload() (*socialnet.World, [][]*socialnet.Tweet, time.Time) {
	cfg := socialnet.DefaultConfig()
	cfg.NumAccounts = 2500
	cfg.OrganicTweetsPerHour = 1500
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	e := socialnet.NewEngine(w)
	start := e.Now()
	hours := make([][]*socialnet.Tweet, ingestBenchHours)
	hour := -1
	e.OnHourStart(func(h int, _ time.Time) { hour = h })
	cancel := e.Subscribe(func(t *socialnet.Tweet) {
		hours[hour] = append(hours[hour], t)
	})
	defer cancel()
	e.RunHours(ingestBenchHours)
	return w, hours, start
}

// ingestPass replays the workload once through src with a fresh monitor
// subscribed on the match path and returns the wall time. lookup is the
// profile resolver the pipeline would use for this topology.
func ingestPass(src source.Source, lookup func(socialnet.AccountID) *socialnet.Account,
	w *socialnet.World, posts int) float64 {
	m := core.NewMonitor(core.MonitorConfig{
		Specs:      core.RandomSpec(ingestBenchNodes),
		ActiveOnly: true,
		Seed:       11,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(12))})
	src.OnHourStart(func(_ int, now time.Time) { m.Rotate(now, time.Hour) })
	delivered := 0
	src.Subscribe(func(p source.Post) {
		delivered++
		_ = m.Match(p.Tweet, lookup)
	})
	start := time.Now()
	if err := src.RunHours(ingestBenchHours * ingestBenchReplay); err != nil {
		panic(err)
	}
	secs := time.Since(start).Seconds()
	if delivered != posts {
		panic(fmt.Sprintf("ingestbench: delivered %d of %d posts", delivered, posts))
	}
	return secs
}

// loopHours tiles the recorded schedule so one pass replays it
// ingestBenchReplay times, keeping passes well past timer noise.
func loopHours(hours [][]*socialnet.Tweet) [][]*socialnet.Tweet {
	out := make([][]*socialnet.Tweet, 0, len(hours)*ingestBenchReplay)
	for r := 0; r < ingestBenchReplay; r++ {
		out = append(out, hours...)
	}
	return out
}

// ingestMeasure reports the median posts/sec for one topology across
// timed passes. build constructs a fresh source (and its lookup) per
// pass so no per-run state leaks between passes.
func ingestMeasure(posts int, w *socialnet.World,
	build func() (source.Source, func(socialnet.AccountID) *socialnet.Account)) float64 {
	src, lookup := build()
	ingestPass(src, lookup, w, posts) // warm-up
	secs := make([]float64, ingestBenchReps)
	for r := range secs {
		src, lookup := build()
		secs[r] = ingestPass(src, lookup, w, posts)
	}
	sort.Float64s(secs)
	return float64(posts) / secs[ingestBenchReps/2]
}

// ingestRun generates the workload and measures the three topologies.
func ingestRun() (*ingestReport, error) {
	w, hours, start := genIngestWorkload()
	looped := loopHours(hours)
	posts := 0
	for _, h := range looped {
		posts += len(h)
	}
	if posts == 0 {
		return nil, fmt.Errorf("ingestbench: workload generated no posts")
	}
	// mux2 splits the schedule across two children; the totals match, so
	// throughput numbers compare directly.
	halfA := make([][]*socialnet.Tweet, len(looped))
	halfB := make([][]*socialnet.Tweet, len(looped))
	for i, h := range looped {
		mid := len(h) / 2
		halfA[i], halfB[i] = h[:mid], h[mid:]
	}

	report := &ingestReport{
		Workload: ingestWorkloadMeta{
			Posts: posts,
			Hours: ingestBenchHours * ingestBenchReplay,
			Cores: runtime.NumCPU(),
			Note: fmt.Sprintf("fixed tweet workload (%dh sim replayed %d times) delivered "+
				"through the Source interface onto the monitor match path; median of %d passes",
				ingestBenchHours, ingestBenchReplay, ingestBenchReps),
		},
	}
	direct := ingestMeasure(posts, w, func() (source.Source, func(socialnet.AccountID) *socialnet.Account) {
		s := &memSource{id: "twitter", world: w, hours: looped, start: start}
		return s, s.Lookup
	})
	mux1 := ingestMeasure(posts, w, func() (source.Source, func(socialnet.AccountID) *socialnet.Account) {
		m := source.NewMux(&memSource{id: "twitter", world: w, hours: looped, start: start})
		return m, m.Lookup
	})
	mux2 := ingestMeasure(posts, w, func() (source.Source, func(socialnet.AccountID) *socialnet.Account) {
		m := source.NewMux(
			&memSource{id: "twitter", world: w, hours: halfA, start: start},
			&memSource{id: "reddit", world: w, hours: halfB, start: start},
		)
		return m, m.Lookup
	})
	for _, e := range []ingestEntry{
		{Mode: "direct", PostsPerSec: direct},
		{Mode: "mux1", PostsPerSec: mux1},
		{Mode: "mux2", PostsPerSec: mux2},
	} {
		e.OverheadVsDirect = (direct - e.PostsPerSec) / direct
		report.Modes = append(report.Modes, e)
	}
	return report, nil
}

// runIngestBench regenerates the BENCH_ingest.json baseline.
func runIngestBench(path string) error {
	report, err := ingestRun()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range report.Modes {
		fmt.Printf("%-6s  %9.0f posts/s  overhead %+.1f%%\n", e.Mode, e.PostsPerSec, e.OverheadVsDirect*100)
	}
	fmt.Printf("wrote %s (cores=%d)\n", path, report.Workload.Cores)
	return nil
}

// runIngestCheck remeasures the topologies and fails when the fresh
// single-child mux costs more than ingestMuxOverheadMax of direct-source
// throughput. The committed baseline is reported for context; the gate
// is machine-relative. PH_SKIP_INGEST_CHECK=1 skips the check.
func runIngestCheck(path string) error {
	if os.Getenv("PH_SKIP_INGEST_CHECK") != "" {
		fmt.Println("ingestcheck: skipped (PH_SKIP_INGEST_CHECK set)")
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old ingestReport
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("ingestcheck: %s: %w", path, err)
	}
	fresh, err := ingestRun()
	if err != nil {
		return err
	}
	var got float64
	for _, e := range fresh.Modes {
		var rec float64
		for _, oe := range old.Modes {
			if oe.Mode == e.Mode {
				rec = oe.OverheadVsDirect
			}
		}
		fmt.Printf("%-6s  recorded overhead %+.1f%% (on %d cores)  fresh %+.1f%%\n",
			e.Mode, rec*100, old.Workload.Cores, e.OverheadVsDirect*100)
		if e.Mode == "mux1" {
			got = e.OverheadVsDirect
		}
	}
	if got > ingestMuxOverheadMax {
		return fmt.Errorf("ingestcheck: mux overhead %.1f%% exceeds the %.0f%% budget",
			got*100, ingestMuxOverheadMax*100)
	}
	fmt.Printf("ingestcheck: mux overhead %+.1f%% within the %.0f%% budget\n",
		got*100, ingestMuxOverheadMax*100)
	return nil
}
