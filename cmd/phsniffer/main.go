// Command phsniffer runs the end-to-end pseudo-honeypot spam sniffer on an
// in-process simulated world: select nodes by attribute, monitor the
// mention stream with hourly rotation, label the collected corpus, train
// the random-forest detector, classify everything, and print the detection
// summary with the PGE ranking.
//
// Usage:
//
//	phsniffer [-hours 24] [-nodes-per-value 2] [-accounts 6000]
//	          [-classifier RF] [-seed 1] [-top 10]
//	          [-source twitter,reddit,replay:DIR]
//	          [-stream] [-batch-size 64] [-flush-interval 25ms]
//	          [-shards N] [-shard-mode inproc|proc]
//	          [-capture-cap 0]
//	          [-store-dir DIR] [-sync-every 1] [-checkpoint-every 1]
//	          [-metrics-addr :9331] [-export run.json]
//	          [-obs-scrape-interval 2s]
//	          [-trace-buffer 256] [-slow-span 250ms] [-log-level info]
//	          [-pprof]
//
// With -source, the sniffer consumes the named ingest sources instead of
// the implicit simulated-Twitter firehose (DESIGN.md §17): "twitter" is
// the explicit form of the default, "reddit" adds the synthetic
// Reddit-like firehose (own account population, crossposting spam),
// and "replay:DIR" re-feeds a capture WAL recorded by an earlier
// -store-dir run with rotation records. Several comma-separated sources
// are merged deterministically; a replay source must ride alone.
// -source implies -stream and is incompatible with -store-dir and
// -shard-mode proc.
//
// With -stream, the sniffer runs on the staged streaming pipeline
// (match → feature → label → detect) with micro-batching tuned by
// -batch-size and -flush-interval; queue depth and backpressure appear
// under ph_pipeline_* on /metrics. Results are identical to the default
// batch mode at the same seed. -capture-cap bounds retained captures
// (FIFO eviction past the cap; 0 keeps everything) in either mode.
//
// With -store-dir (implies -stream), every capture is written to a WAL in
// that directory and the pipeline state is checkpointed each simulated
// hour (DESIGN.md §14). A restarted phsniffer pointed at the same
// directory recovers the durable state, fast-forwards past the hours
// already accounted for, and continues without double-counting — the
// final result is identical to a run that never stopped. The directory is
// locked against concurrent runs; -sync-every groups WAL fsyncs
// (group commit), -checkpoint-every spaces checkpoints in simulated
// hours. Adding -record-rotations journals the hourly rotations and a
// final profile epilogue too, which is what -source replay:DIR needs to
// re-feed the recording later.
//
// With -metrics-addr, the process serves its live metrics registry at
// GET /metrics (Prometheus text), GET /healthz, and — when tracing is on —
// the per-capture pipeline traces at GET /debug/traces while the run
// executes; -pprof additionally mounts net/http/pprof. With -export, the
// result tables plus a final metrics snapshot and the stage-latency trace
// summary are written as JSON.
//
// Tracing is sized by -trace-buffer (0 disables it entirely; the pipeline
// then pays one atomic load per capture). Spans at or above -slow-span log
// a warn event through the structured logger, whose verbosity is
// -log-level (debug, info, warn, error).
//
// With -server, phsniffer instead attaches to a running twitterd over HTTP:
// nodes are screened through the REST search endpoint and monitored through
// statuses/filter, one simulated hour per rotation. Remote mode reports the
// collection statistics (labeling and training need the in-process oracle).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	pseudohoneypot "github.com/pseudo-honeypot/pseudohoneypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/obs"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/remote"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/report"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/shard"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// logger is the process logger, reconfigured from -log-level in run.
var logger = trace.NewLogger(os.Stderr, trace.LevelInfo)

func main() {
	// In -shard-mode proc the coordinator spawns shard workers by
	// re-executing this binary; a process carrying the worker marker
	// serves the epoch RPC instead of running a sniffer.
	shard.MaybeWorker()
	if err := run(); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		hours       = flag.Int("hours", 24, "simulated hours to monitor")
		perValue    = flag.Int("nodes-per-value", 2, "pseudo-honeypot nodes per attribute sample value (paper: 10)")
		accounts    = flag.Int("accounts", 6000, "number of simulated accounts")
		organic     = flag.Int("organic", 1200, "organic tweets per simulated hour")
		classifier  = flag.String("classifier", "RF", "detector family: DT, kNN, SVM, EGB, RF")
		seed        = flag.Int64("seed", 1, "world and selection seed")
		top         = flag.Int("top", 10, "PGE rows to print")
		srcSpec     = flag.String("source", "", "comma-separated ingest sources: twitter, reddit, replay:DIR (empty = implicit twitter; implies -stream)")
		stream      = flag.Bool("stream", false, "run on the staged streaming pipeline instead of batch mode")
		batchSize   = flag.Int("batch-size", pseudohoneypot.DefaultStreamBatchSize, "streaming micro-batch flush size")
		flushEvery  = flag.Duration("flush-interval", pseudohoneypot.DefaultStreamFlushInterval, "streaming partial-batch age bound")
		shards      = flag.Int("shards", 0, "partition the honeypot nodes across N shard monitors (implies -stream; 0/1 = unsharded)")
		shardMode   = flag.String("shard-mode", "", "shard isolation: inproc (goroutines, default) or proc (worker subprocesses over loopback HTTP)")
		captureCap  = flag.Int("capture-cap", 0, "max captures retained (FIFO eviction past the cap; 0 = unbounded)")
		storeDir    = flag.String("store-dir", "", "durable WAL+checkpoint directory; a restart against it resumes without double-counting (implies -stream)")
	recordRot   = flag.Bool("record-rotations", false, "journal hourly rotations and a profile epilogue into the WAL so -source replay:DIR can re-feed it (requires -store-dir)")
		syncEvery   = flag.Int("sync-every", 1, "WAL appends per fsync (group commit; 1 = every capture durable immediately)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "simulated hours between pipeline checkpoints")
		server      = flag.String("server", "", "twitterd base URL for remote monitoring (e.g. http://127.0.0.1:8331)")
		metricsOn   = flag.String("metrics-addr", "", "serve GET /metrics, /healthz and /debug/traces on this address during the run")
		export      = flag.String("export", "", "write result tables plus metrics snapshot and trace summary as JSON to this file")
		traceBuffer = flag.Int("trace-buffer", 256, "per-capture pipeline traces to retain (0 disables tracing)")
		slowSpan    = flag.Duration("slow-span", 250*time.Millisecond, "log a warn event for spans at least this long (0 disables)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof on the metrics address")
		obsScrape   = flag.Duration("obs-scrape-interval", 2*time.Second, "fleet federation: how often the coordinator scrapes proc-mode shard workers' /metrics (0 disables)")
	)
	flag.Parse()

	level, err := trace.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger.SetLevel(level)
	tracer := trace.Default()
	tracer.Configure(trace.Config{
		Enabled:  *traceBuffer > 0,
		Buffer:   *traceBuffer,
		SlowSpan: *slowSpan,
		Logger:   logger,
		Observer: metrics.Default().SpanObserver(),
	})

	// The federator fronts /metrics and /healthz: standalone it passes the
	// local registry through untouched; in -shard-mode proc it scrapes the
	// shard workers' loopback admin servers and serves the fleet rollup
	// (DESIGN.md §16). The WAL health extra is bound late — the store only
	// exists once the sniffer is built — through an atomic pointer so the
	// handler can already be serving.
	fed := obs.NewFederator(obs.FederatorConfig{
		Local:    metrics.Default(),
		Interval: *obsScrape,
		Logger:   logger,
	})
	var walExtra atomic.Pointer[func(*metrics.Health)]
	healthExtra := func(h *metrics.Health) {
		if f := walExtra.Load(); f != nil {
			(*f)(h)
		}
	}
	if *metricsOn != "" {
		go serveMetrics(*metricsOn, tracer, *pprofOn, fed, healthExtra)
	}

	if *server != "" {
		return runRemote(*server, *hours, *perValue, *seed, *export)
	}

	srcNames := splitSources(*srcSpec)
	// Replay- or reddit-only ingestion owns its account population; the
	// local simulation exists only for the implicit or explicit twitter
	// source.
	needSim := len(srcNames) == 0
	for _, n := range srcNames {
		if n == "twitter" {
			needSim = true
		}
	}
	var sim *pseudohoneypot.Simulation
	if needSim {
		cfg := pseudohoneypot.DefaultConfig()
		cfg.Seed = *seed
		cfg.NumAccounts = *accounts
		cfg.OrganicTweetsPerHour = *organic
		var err error
		sim, err = pseudohoneypot.NewSimulation(cfg)
		if err != nil {
			return err
		}
	}
	sources, err := buildSources(srcNames, sim, *seed)
	if err != nil {
		return err
	}
	if len(sources) > 0 {
		*stream = true // explicit sources feed the stage graph
	}
	if *storeDir != "" {
		*stream = true // durability rides on the stage graph's ordering
	}
	if *shards > 1 || *shardMode == "proc" {
		*stream = true // sharding partitions the stream filter
	}
	sniffer, err := pseudohoneypot.NewSniffer(sim, pseudohoneypot.SnifferConfig{
		Specs:      pseudohoneypot.StandardSpecs(*perValue),
		Classifier: pseudohoneypot.ClassifierName(*classifier),
		Seed:       *seed,
		CaptureCap: *captureCap,
		Stream: pseudohoneypot.StreamConfig{
			Enabled:       *stream,
			BatchSize:     *batchSize,
			FlushInterval: *flushEvery,
		},
		Sources:   sources,
		Shards:    *shards,
		ShardMode: *shardMode,
		Durability: pseudohoneypot.DurabilityConfig{
			Dir:             *storeDir,
			SyncEvery:       *syncEvery,
			CheckpointEvery: *ckptEvery,
			RecordRotations: *recordRot,
		},
	})
	if err != nil {
		return err
	}
	defer sniffer.Close()
	if f := sniffer.HealthExtra(); f != nil {
		walExtra.Store(&f)
	}
	collector := obs.NewCollector(metrics.Default())
	stopCollector := collector.Start(0)
	defer stopCollector()
	watchdog := obs.NewWatchdog(obs.WatchdogConfig{
		Metrics: metrics.Default(),
		Logger:  logger,
	})
	stopWatchdog := watchdog.Start()
	defer stopWatchdog()
	federated := false
	if urls := sniffer.ShardAdminURLs(); len(urls) > 0 && *obsScrape > 0 {
		federated = true
		fed.SetTargets(func() []obs.Target {
			urls := sniffer.ShardAdminURLs()
			ts := make([]obs.Target, len(urls))
			for i, u := range urls {
				ts[i] = obs.Target{Name: strconv.Itoa(i + 1), URL: u}
			}
			return ts
		})
		stopScrape := fed.Start()
		defer stopScrape()
	}
	if rec := sniffer.Recovery(); rec != nil {
		logger.Info("durable store recovered",
			"dir", *storeDir, "checkpoint", rec.Checkpoint != nil,
			"replayed_records", len(rec.Records), "torn_segments", rec.Torn,
			"checkpoint_fallbacks", rec.Fallbacks)
	}

	specs := pseudohoneypot.StandardSpecs(*perValue)
	nodes := 0
	for _, s := range specs {
		nodes += s.Nodes
	}
	logger.Info("pseudo-honeypot network deployed",
		"nodes", nodes, "accounts", *accounts, "hours", *hours,
		"classifier", *classifier, "tracing", tracer.Enabled(),
		"streaming", *stream, "shards", *shards, "shard_mode", *shardMode,
		"capture_cap", *captureCap)

	if err := sniffer.RunHours(*hours); err != nil {
		return err
	}
	res, err := sniffer.DetectAll()
	if err != nil {
		return err
	}

	logger.Info("detection complete",
		"captures", res.Captures, "spams", res.Spams, "spammers", res.Spammers)
	logger.Info("ground truth labeled",
		"spams", res.Labels.TotalSpams(), "spammers", res.Labels.TotalSpammers(),
		"manual_checks", res.Labels.ManualChecks)

	tbl := &report.Table{
		Title:   "Top attributes by garner efficiency (PGE)",
		Headers: []string{"Rank", "Selector", "Spammers", "Node-hours", "PGE"},
	}
	for i, row := range res.PGE {
		if i >= *top {
			break
		}
		tbl.AddRow(i+1, row.Selector.String(), row.Spammers, row.NodeHours, row.PGE)
	}
	fmt.Print(tbl.Render())
	var fleet []metrics.FamilySnapshot
	if federated && *export != "" {
		fed.ScrapeOnce(context.Background()) // final sweep: workers idle, counters settled
		fleet = fed.Rollup()
	}
	return writeExport(*export, []*report.Table{tbl}, fleet)
}

// splitSources parses the -source flag into its trimmed, non-empty
// comma-separated entries.
func splitSources(spec string) []string {
	var names []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// buildSources constructs the ingest sources named by -source. sim is
// non-nil exactly when the list names twitter; reddit seeds a disjoint
// world off the run seed so the two populations never collide.
func buildSources(names []string, sim *pseudohoneypot.Simulation, seed int64) ([]pseudohoneypot.IngestSource, error) {
	sources := make([]pseudohoneypot.IngestSource, 0, len(names))
	for _, name := range names {
		switch {
		case name == "twitter":
			sources = append(sources, pseudohoneypot.NewTwitterSource(sim))
		case name == "reddit":
			src, err := pseudohoneypot.NewRedditSource(pseudohoneypot.RedditSourceConfig{Seed: seed + 2})
			if err != nil {
				return nil, err
			}
			sources = append(sources, src)
		case strings.HasPrefix(name, "replay:"):
			dir := strings.TrimPrefix(name, "replay:")
			if dir == "" {
				return nil, fmt.Errorf("replay source needs a directory: %q", name)
			}
			src, err := pseudohoneypot.NewReplaySource(dir)
			if err != nil {
				return nil, err
			}
			sources = append(sources, src)
		default:
			return nil, fmt.Errorf("unknown source %q (want twitter, reddit, or replay:DIR)", name)
		}
	}
	return sources, nil
}

// serveMetrics exposes the process metrics — fronted by the fleet
// federator, which passes the local registry through until proc-mode
// shard targets are installed — plus the trace ring and (opt-in) pprof
// over HTTP for the duration of the run.
func serveMetrics(addr string, tracer *trace.Tracer, pprofOn bool, fed *obs.Federator, health func(*metrics.Health)) {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", fed.Handler())
	mux.Handle("GET /healthz", fed.HealthHandler(health))
	mux.Handle("GET /debug/traces", tracer.Handler())
	mux.Handle("GET /debug/traces/{id}", tracer.Handler())
	if pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("metrics server stopped", "addr", addr, "err", err)
	}
}

// writeExport archives the result tables with a final snapshot of the
// process-default registry, the tracer's stage-latency summary, and — for
// federated proc runs — the fleet-level metrics rollup. An empty path is
// a no-op.
func writeExport(path string, tables []*report.Table, fleet []metrics.FamilySnapshot) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	export := report.NewExport(tables, metrics.Default()).
		WithTraces(trace.Default()).WithFleet(fleet)
	if err := export.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// runRemote monitors a live twitterd over HTTP and reports collection
// statistics per selector group.
func runRemote(server string, hours, perValue int, seed int64, export string) error {
	client := twitterapi.NewClient(server, http.DefaultClient)
	sniffer, err := remote.NewSniffer(client, core.MonitorConfig{
		Specs:      core.StandardSpecs(perValue),
		ActiveOnly: true,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	logger.Info("remote monitoring", "server", server, "hours", hours)
	if err := sniffer.MonitorSimHours(context.Background(), hours); err != nil {
		return err
	}
	fmt.Println(sniffer.Summary())

	tbl := &report.Table{
		Title:   "Collected tweets per selector group (top 15)",
		Headers: []string{"Selector", "Tweets", "Senders", "Node-hours"},
	}
	groups := sniffer.Monitor().Groups()
	shown := 0
	for _, g := range groups {
		if g.Tweets == 0 {
			continue
		}
		tbl.AddRow(g.Spec.Selector.String(), g.Tweets, len(g.Senders), g.NodeHours)
		shown++
		if shown >= 15 {
			break
		}
	}
	fmt.Print(tbl.Render())
	return writeExport(export, []*report.Table{tbl}, nil)
}
