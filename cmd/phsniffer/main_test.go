package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// execRun invokes run() exactly as the CLI would, with a fresh flag set.
func execRun(t *testing.T, args ...string) {
	t.Helper()
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	flag.CommandLine = flag.NewFlagSet("phsniffer", flag.ContinueOnError)
	os.Args = append([]string{"phsniffer"}, args...)
	if err := run(); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
}

// exportTables reads the result tables out of an -export file, ignoring
// the metrics snapshot (the process-wide registry accumulates across the
// runs sharing this test binary).
func exportTables(t *testing.T, path string) []json.RawMessage {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tables []json.RawMessage `json:"tables"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tables) == 0 {
		t.Fatalf("%s: no tables exported", path)
	}
	return doc.Tables
}

// TestStoreDirResumesWithoutDoubleCounting is the daemon-level recovery
// property: run phsniffer for 2 hours against -store-dir, run it again to
// the full 6 hours against the same directory (recover + resume), and the
// exported results must match an uninterrupted 6-hour run's exactly. A
// third run over the already-complete history must change nothing.
func TestStoreDirResumesWithoutDoubleCounting(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	// Two nodes per sample value: one tweet can then hit monitored
	// accounts in different groups and yield several capture records,
	// which recovery must replay without collapsing them into one.
	common := []string{
		"-accounts", "2000", "-organic", "400", "-nodes-per-value", "2",
		"-seed", "1", "-trace-buffer", "0", "-stream",
	}
	arg := func(extra ...string) []string { return append(append([]string(nil), common...), extra...) }

	refPath := filepath.Join(dir, "ref.json")
	execRun(t, arg("-hours", "6", "-export", refPath)...)
	want := exportTables(t, refPath)

	execRun(t, arg("-hours", "2", "-store-dir", storeDir)...)

	resumedPath := filepath.Join(dir, "resumed.json")
	execRun(t, arg("-hours", "6", "-store-dir", storeDir, "-export", resumedPath)...)
	if got := exportTables(t, resumedPath); !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run:\n got  %s\n want %s",
			got, want)
	}

	// Everything is already durable: a full re-run is a no-op replay.
	againPath := filepath.Join(dir, "again.json")
	execRun(t, arg("-hours", "6", "-store-dir", storeDir, "-export", againPath)...)
	if got := exportTables(t, againPath); !reflect.DeepEqual(want, got) {
		t.Fatalf("idempotent re-run diverged:\n got  %s\n want %s", got, want)
	}
}
