package main

import (
	"errors"
	"testing"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// journalWorld builds a small engine the way run() does.
func journalWorld(t *testing.T, seed int64) *socialnet.Engine {
	t.Helper()
	cfg := socialnet.DefaultConfig()
	cfg.Seed = seed
	cfg.NumAccounts = 300
	cfg.OrganicTweetsPerHour = 40
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return socialnet.NewEngine(w)
}

// TestSimJournalFastForwards: advances journaled through the API server
// survive a daemon restart — the reopened journal fast-forwards a freshly
// regenerated engine to the hour the dead daemon had reached, repeatedly.
func TestSimJournalFastForwards(t *testing.T) {
	dir := t.TempDir()

	engine := journalWorld(t, 1)
	st, hook, err := openJournal(dir, 1, 300, 40, engine)
	if err != nil {
		t.Fatal(err)
	}
	api := twitterapi.NewServer(engine, hook, twitterapi.WithMetrics(metrics.NewRegistry()))
	api.Advance(2)
	api.Advance(1)
	wantNow := engine.Now()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	engine2 := journalWorld(t, 1)
	st2, hook2, err := openJournal(dir, 1, 300, 40, engine2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := engine2.Now(); !got.Equal(wantNow) {
		t.Fatalf("fast-forwarded clock = %v, want %v", got, wantNow)
	}
	api2 := twitterapi.NewServer(engine2, hook2, twitterapi.WithMetrics(metrics.NewRegistry()))
	api2.Advance(4)
	wantNow = engine2.Now()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	engine3 := journalWorld(t, 1)
	st3, _, err := openJournal(dir, 1, 300, 40, engine3)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer func() { _ = st3.Close() }()
	if got := engine3.Now(); !got.Equal(wantNow) {
		t.Fatalf("twice-restarted clock = %v, want %v", got, wantNow)
	}
}

// TestSimJournalRejectsForeignWorld: a journal recorded under one world
// parameterization must refuse to drive another.
func TestSimJournalRejectsForeignWorld(t *testing.T) {
	dir := t.TempDir()
	engine := journalWorld(t, 1)
	st, hook, err := openJournal(dir, 1, 300, 40, engine)
	if err != nil {
		t.Fatal(err)
	}
	api := twitterapi.NewServer(engine, hook, twitterapi.WithMetrics(metrics.NewRegistry()))
	api.Advance(1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := openJournal(dir, 2, 300, 40, journalWorld(t, 2)); !errors.Is(err, store.ErrMetaMismatch) {
		t.Fatalf("foreign-seed reopen error = %v, want ErrMetaMismatch", err)
	}
}
