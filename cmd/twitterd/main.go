// Command twitterd serves a simulated Twitter-like social network over the
// emulated developer APIs: statuses/filter streaming (NDJSON), user
// show/lookup/search, trends, and simulation control endpoints.
//
// Usage:
//
//	twitterd [-addr :8331] [-accounts 6000] [-organic 1200] [-seed 1]
//	         [-tick 2s] [-oracle]
//
// With -tick set, one simulated hour elapses per tick of wall time;
// without it, advance time explicitly via POST /sim/advance.json?hours=N.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8331", "listen address")
		accounts = flag.Int("accounts", 6000, "number of simulated accounts")
		organic  = flag.Int("organic", 1200, "organic tweets per simulated hour")
		seed     = flag.Int64("seed", 1, "world seed")
		tick     = flag.Duration("tick", 0, "wall-clock duration of one simulated hour (0 = manual advance)")
		oracle   = flag.Bool("oracle", false, "expose ground-truth spam fields on streams (evaluation only)")
	)
	flag.Parse()

	cfg := socialnet.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumAccounts = *accounts
	cfg.OrganicTweetsPerHour = *organic
	world, err := socialnet.NewWorld(cfg)
	if err != nil {
		return err
	}
	engine := socialnet.NewEngine(world)

	opts := []twitterapi.ServerOption{twitterapi.WithSeed(*seed)}
	if *oracle {
		opts = append(opts, twitterapi.WithOracle())
	}
	api := twitterapi.NewServer(engine, opts...)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *tick > 0 {
		go func() {
			ticker := time.NewTicker(*tick)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					api.Advance(1)
				}
			}
		}()
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("twitterd: %d accounts, %d organic tweets/h, listening on %s\n",
		world.NumAccounts(), *organic, *addr)
	fmt.Println("twitterd: observability at GET /metrics (Prometheus text) and GET /healthz")
	if *tick > 0 {
		fmt.Printf("twitterd: 1 simulated hour per %v\n", *tick)
	} else {
		fmt.Println("twitterd: advance time via POST /sim/advance.json?hours=N")
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
