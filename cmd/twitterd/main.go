// Command twitterd serves a simulated Twitter-like social network over the
// emulated developer APIs: statuses/filter streaming (NDJSON), user
// show/lookup/search, trends, and simulation control endpoints.
//
// Usage:
//
//	twitterd [-addr :8331] [-accounts 6000] [-organic 1200] [-seed 1]
//	         [-tick 2s] [-oracle] [-store-dir DIR]
//	         [-trace-buffer 256] [-slow-span 250ms] [-log-level info]
//	         [-pprof]
//
// With -tick set, one simulated hour elapses per tick of wall time;
// without it, advance time explicitly via POST /sim/advance.json?hours=N.
//
// With -store-dir, every time advance is journaled to a durable WAL in
// that directory; a restarted twitterd replays the journal and
// fast-forwards the (deterministically regenerated) world to the hour it
// had reached, so clients resume against the same simulated timeline. The
// directory is locked against a second concurrent daemon and bound to the
// world parameters (seed, accounts, organic rate) — reopening it under
// different ones fails instead of diverging.
//
// Observability: GET /metrics (Prometheus text), GET /healthz, and — when
// -trace-buffer is positive — GET /debug/traces; -pprof additionally
// mounts net/http/pprof. -slow-span and -log-level control the structured
// event log on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/obs"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/shard"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// logger is the process logger, reconfigured from -log-level in run.
var logger = trace.NewLogger(os.Stderr, trace.LevelInfo)

func main() {
	// Proc-mode shard coordinators spawn workers by re-executing the
	// current binary, so every daemon in this repo installs the worker
	// hook first thing in main — a process carrying the worker marker
	// serves the shard epoch RPC instead of booting the daemon.
	shard.MaybeWorker()
	if err := run(); err != nil {
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8331", "listen address")
		accounts    = flag.Int("accounts", 6000, "number of simulated accounts")
		organic     = flag.Int("organic", 1200, "organic tweets per simulated hour")
		seed        = flag.Int64("seed", 1, "world seed")
		tick        = flag.Duration("tick", 0, "wall-clock duration of one simulated hour (0 = manual advance)")
		oracle      = flag.Bool("oracle", false, "expose ground-truth spam fields on streams (evaluation only)")
		storeDir    = flag.String("store-dir", "", "durable sim-time journal: a restarted daemon fast-forwards to the hour it had reached")
		traceBuffer = flag.Int("trace-buffer", 256, "pipeline traces to retain for /debug/traces (0 disables tracing)")
		slowSpan    = flag.Duration("slow-span", 250*time.Millisecond, "log a warn event for spans at least this long (0 disables)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	level, err := trace.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger.SetLevel(level)
	tracer := trace.Default()
	tracer.Configure(trace.Config{
		Enabled:  *traceBuffer > 0,
		Buffer:   *traceBuffer,
		SlowSpan: *slowSpan,
		Logger:   logger,
		Observer: metrics.Default().SpanObserver(),
	})

	cfg := socialnet.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumAccounts = *accounts
	cfg.OrganicTweetsPerHour = *organic
	world, err := socialnet.NewWorld(cfg)
	if err != nil {
		return err
	}
	engine := socialnet.NewEngine(world)

	// Runtime telemetry (ph_runtime_* heap/GC/goroutine gauges) samples
	// into the default registry for the daemon's lifetime.
	collector := obs.NewCollector(metrics.Default())
	stopCollector := collector.Start(0)
	defer stopCollector()

	opts := []twitterapi.ServerOption{twitterapi.WithSeed(*seed)}
	if *storeDir != "" {
		st, journal, err := openJournal(*storeDir, *seed, *accounts, *organic, engine)
		if err != nil {
			return err
		}
		defer func() { _ = st.Close() }()
		opts = append(opts, journal, twitterapi.WithHealth(st.HealthExtra()))
	}
	if *oracle {
		opts = append(opts, twitterapi.WithOracle())
	}
	if tracer.Enabled() {
		opts = append(opts, twitterapi.WithTracer(tracer))
	}
	if *pprofOn {
		opts = append(opts, twitterapi.WithPprof())
	}
	api := twitterapi.NewServer(engine, opts...)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *tick > 0 {
		go func() {
			ticker := time.NewTicker(*tick)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					api.Advance(1)
				}
			}
		}()
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	logger.Info("twitterd listening",
		"addr", *addr, "accounts", world.NumAccounts(), "organic_per_hour", *organic,
		"oracle", *oracle, "tracing", tracer.Enabled(), "pprof", *pprofOn)
	if *tick > 0 {
		logger.Info("auto-advancing simulated time", "hour_every", *tick)
	} else {
		logger.Info("manual time control", "endpoint", "POST /sim/advance.json?hours=N")
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// openJournal opens the durable sim-time journal at dir and fast-forwards
// engine by the recovered hours — the world regenerates deterministically
// from its seed, so re-running the journaled hours reproduces the timeline
// a dead daemon had reached. The returned server option journals every
// future advance; the journal is bound (via the store's config
// fingerprint) to the world parameters, so reopening it under a different
// seed, account count, or organic rate fails instead of diverging.
func openJournal(dir string, seed int64, accounts, organic int, engine *socialnet.Engine) (*store.Store, twitterapi.ServerOption, error) {
	meta := fmt.Sprintf("twitterd|%d|%d|%d", seed, accounts, organic)
	st, rec, err := store.Open(store.Options{Dir: dir, Meta: meta})
	if err != nil {
		return nil, nil, err
	}
	if rec.SimHours > 0 {
		logger.Info("replaying sim-time journal", "hours", rec.SimHours, "dir", dir)
		engine.RunHours(rec.SimHours)
	}
	hook := twitterapi.WithAdvanceHook(func(hours int) {
		if err := st.AppendSimHours(hours); err != nil {
			logger.Error("sim-time journal append failed", "err", err)
		}
	})
	return st, hook, nil
}
