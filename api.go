package pseudohoneypot

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/experiments"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/honeypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the stable public surface.
type (
	// Config parameterizes the simulated social world.
	Config = socialnet.Config
	// World is the simulated social network.
	World = socialnet.World
	// Tweet is one simulated status update.
	Tweet = socialnet.Tweet
	// Account is a simulated user profile.
	Account = socialnet.Account
	// AccountID identifies an account.
	AccountID = socialnet.AccountID
	// Selector is one pseudo-honeypot selection criterion.
	Selector = socialnet.Selector
	// SelectorSpec pairs a selector with its node budget.
	SelectorSpec = core.SelectorSpec
	// Monitor is the pseudo-honeypot monitoring engine.
	Monitor = core.Monitor
	// GroupStats aggregates one selector group's captures.
	GroupStats = core.GroupStats
	// Capture is one collected tweet with extraction context.
	Capture = core.Capture
	// PGERow is one garner-efficiency ranking entry.
	PGERow = core.PGERow
	// ClassifierName identifies a detector family (DT, kNN, SVM, EGB, RF).
	ClassifierName = core.ClassifierName
	// Metrics holds classification quality measures.
	Metrics = ml.Metrics
	// LabelResult is the ground-truth labeling output.
	LabelResult = label.Result
	// APIServer is the HTTP emulation of the Twitter developer APIs.
	APIServer = twitterapi.Server
	// APIClient consumes the emulated Twitter APIs.
	APIClient = twitterapi.Client
	// HoneypotDeployment is the traditional-honeypot baseline.
	HoneypotDeployment = honeypot.Deployment
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = experiments.Runner
	// OnlineDetector retrains on a sliding window of labeled captures,
	// the paper's §IV-C answer to the Twitter spammer-drift problem.
	OnlineDetector = core.OnlineDetector
	// Tracer records per-capture pipeline traces (DESIGN.md §11).
	Tracer = trace.Tracer
	// TraceConfig parameterizes a Tracer.
	TraceConfig = trace.Config
)

// NewTracer creates a pipeline tracer; pass it through SnifferConfig.Tracer
// and mount its Handler at /debug/traces.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// NewOnlineDetector creates a drift-aware detector of the named family
// with the given sliding-window size and retraining cadence.
func NewOnlineDetector(name ClassifierName, window, retrainEvery int, seed int64) (*OnlineDetector, error) {
	return core.NewOnlineDetector(name, window, retrainEvery, seed)
}

// Classifier family names (the paper's Table IV rows).
const (
	ClassifierDT  = core.ClassifierDT
	ClassifierKNN = core.ClassifierKNN
	ClassifierSVM = core.ClassifierSVM
	ClassifierEGB = core.ClassifierEGB
	ClassifierRF  = core.ClassifierRF
)

// DefaultConfig returns the scaled-down default world configuration.
func DefaultConfig() Config { return socialnet.DefaultConfig() }

// FullScaleConfig approximates the paper's deployment scale.
func FullScaleConfig() Config { return socialnet.FullScaleConfig() }

// StandardSpecs builds the paper's 2,400-node deployment plan scaled by
// nodesPerValue (10 reproduces the paper's budget exactly).
func StandardSpecs(nodesPerValue int) []SelectorSpec {
	return core.StandardSpecs(nodesPerValue)
}

// RandomSpec builds the non-pseudo-honeypot baseline plan: n random nodes.
func RandomSpec(n int) []SelectorSpec { return core.RandomSpec(n) }

// Simulation couples a generated world with its traffic engine.
type Simulation struct {
	world  *socialnet.World
	engine *socialnet.Engine
}

// NewSimulation generates a world from cfg and prepares its engine.
func NewSimulation(cfg Config) (*Simulation, error) {
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{world: w, engine: socialnet.NewEngine(w)}, nil
}

// World returns the simulated network.
func (s *Simulation) World() *World { return s.world }

// Now returns the current virtual time.
func (s *Simulation) Now() time.Time { return s.engine.Now() }

// RunHours advances the simulation by n hours of traffic.
func (s *Simulation) RunHours(n int) { s.engine.RunHours(n) }

// Subscribe delivers every generated tweet to fn (read-only) and returns a
// cancel function.
func (s *Simulation) Subscribe(fn func(*Tweet)) (cancel func()) {
	return s.engine.Subscribe(fn)
}

// NewAPIServer exposes the simulation over the emulated Twitter API.
// Advance simulated hours through the server (or POST /sim/advance.json)
// rather than calling RunHours directly once handlers are attached.
func (s *Simulation) NewAPIServer(opts ...twitterapi.ServerOption) *APIServer {
	return twitterapi.NewServer(s.engine, opts...)
}

// SnifferConfig parameterizes a pseudo-honeypot sniffer.
type SnifferConfig struct {
	// Specs is the deployment plan; nil uses StandardSpecs(2).
	Specs []SelectorSpec
	// Classifier selects the detector family; empty uses RF, the
	// paper's choice.
	Classifier ClassifierName
	// Seed drives selection sampling and model training.
	Seed int64
	// ManualLabelErrorRate is the simulated human-annotator error rate
	// used during ground-truth labeling.
	ManualLabelErrorRate float64
	// NaiveSelection disables the pseudo-honeypot selection refinements
	// (Active-status screening and ratio hygiene). The paper's
	// "non pseudo-honeypot" baseline selects accounts naively.
	NaiveSelection bool
	// Tracer records per-capture pipeline traces through every stage;
	// nil uses the process-wide trace.Default() (disabled by default).
	Tracer *Tracer
}

// Sniffer is the end-to-end pseudo-honeypot pipeline bound to a
// simulation: node selection with hourly rotation, mention monitoring,
// labeling, training, and classification.
type Sniffer struct {
	sim     *Simulation
	monitor *core.Monitor
	cfg     SnifferConfig
	detach  func()
}

// NewSniffer attaches a sniffer to the simulation. The node set rotates at
// every simulated hour automatically.
func NewSniffer(sim *Simulation, cfg SnifferConfig) (*Sniffer, error) {
	if sim == nil {
		return nil, errors.New("pseudohoneypot: nil simulation")
	}
	if len(cfg.Specs) == 0 {
		cfg.Specs = core.StandardSpecs(2)
	}
	if cfg.Classifier == "" {
		cfg.Classifier = core.ClassifierRF
	}
	if cfg.ManualLabelErrorRate == 0 {
		cfg.ManualLabelErrorRate = 0.01
	}
	mcfg := core.MonitorConfig{
		Specs:      cfg.Specs,
		ActiveOnly: true,
		Seed:       cfg.Seed,
		Tracer:     cfg.Tracer,
	}
	if cfg.NaiveSelection {
		mcfg.ActiveOnly = false
		mcfg.MaxRatio = -1
	}
	m := core.NewMonitor(mcfg, &core.LocalScreener{
		World: sim.world,
		Rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
	})
	detach := core.Attach(m, sim.engine)
	return &Sniffer{sim: sim, monitor: m, cfg: cfg, detach: detach}, nil
}

// Close detaches the sniffer from the simulation's stream.
func (s *Sniffer) Close() { s.detach() }

// Monitor exposes the underlying monitor (groups, captures, PGE inputs).
func (s *Sniffer) Monitor() *Monitor { return s.monitor }

// DetectionResult is the outcome of DetectAll.
type DetectionResult struct {
	// Captures is the number of collected tweets.
	Captures int
	// Spams is the number classified as spam.
	Spams int
	// Spammers is the number of distinct detected spam accounts.
	Spammers int
	// Labels is the ground-truth labeling used for training.
	Labels *LabelResult
	// PGE ranks every selector group by garner efficiency.
	PGE []PGERow
}

// DetectAll runs the paper's detection pipeline on everything collected so
// far: label the corpus (suspended accounts, clustering, rules, simulated
// manual checking), train the configured classifier, classify all
// captures, and attribute spam to selector groups.
func (s *Sniffer) DetectAll() (*DetectionResult, error) {
	captures := s.monitor.Captures()
	if len(captures) == 0 {
		return nil, errors.New("pseudohoneypot: nothing captured yet")
	}
	tweets := make([]*socialnet.Tweet, len(captures))
	for i, c := range captures {
		tweets[i] = c.Tweet
	}
	corpus := label.NewCorpus(tweets, s.sim.world.Account)
	lcfg := label.DefaultConfig()
	lcfg.Tracer = s.cfg.Tracer
	pipeline := label.NewPipeline(lcfg)
	oracle := label.NewNoisyOracle(s.sim.world, s.cfg.ManualLabelErrorRate, s.cfg.Seed+2)
	labels := pipeline.Run(corpus, oracle)
	adoptLabelSpans(pipeline.LastTrace(), captures)

	clf, err := core.NewClassifier(s.cfg.Classifier, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(clf)
	det.SetTracer(s.cfg.Tracer)
	if err := det.Train(captures, labels); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	verdicts := det.Classify(captures)
	s.monitor.AttributeSpam(verdicts)

	res := &DetectionResult{
		Captures: len(captures),
		Labels:   labels,
		PGE:      core.ComputePGE(s.monitor.Groups()),
	}
	spammers := make(map[socialnet.AccountID]struct{})
	for i, v := range verdicts {
		if v {
			res.Spams++
			spammers[captures[i].Tweet.AuthorID] = struct{}{}
		}
	}
	res.Spammers = len(spammers)
	return res, nil
}

// adoptLabelSpans copies the labeling-pass spans of a batch label trace
// into every capture trace that fed the corpus, so each capture's journey
// shows the labeling work done on it. Adopted spans are marked with a
// batch attribute carrying the label trace's id.
func adoptLabelSpans(labelTrace *trace.Trace, captures []*core.Capture) {
	if labelTrace == nil {
		return
	}
	info := labelTrace.Snapshot()
	batch := trace.KV{Key: "batch", Value: info.ID}
	for _, c := range captures {
		if c.Trace == nil {
			continue
		}
		for _, sp := range info.Spans {
			if !strings.HasPrefix(sp.Stage, "label_") {
				continue // skip parallel_batch bookkeeping spans
			}
			c.Trace.AddSpan(sp.Stage, sp.Start, sp.End(), batch)
		}
	}
}

// NewExperiments creates a runner that regenerates the paper's tables and
// figures at the named scale ("small", "medium", or "full").
func NewExperiments(scaleName string) (*ExperimentRunner, error) {
	scale, ok := experiments.ScaleByName(scaleName)
	if !ok {
		return nil, fmt.Errorf("pseudohoneypot: unknown scale %q", scaleName)
	}
	return experiments.NewRunner(scale), nil
}
