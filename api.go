package pseudohoneypot

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/experiments"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/honeypot"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/label"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/metrics"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/ml"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/pipeline"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/shard"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/source"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/store"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/trace"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/twitterapi"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the stable public surface.
type (
	// Config parameterizes the simulated social world.
	Config = socialnet.Config
	// World is the simulated social network.
	World = socialnet.World
	// Tweet is one simulated status update.
	Tweet = socialnet.Tweet
	// Account is a simulated user profile.
	Account = socialnet.Account
	// AccountID identifies an account.
	AccountID = socialnet.AccountID
	// Selector is one pseudo-honeypot selection criterion.
	Selector = socialnet.Selector
	// SelectorSpec pairs a selector with its node budget.
	SelectorSpec = core.SelectorSpec
	// Monitor is the pseudo-honeypot monitoring engine.
	Monitor = core.Monitor
	// GroupStats aggregates one selector group's captures.
	GroupStats = core.GroupStats
	// Capture is one collected tweet with extraction context.
	Capture = core.Capture
	// PGERow is one garner-efficiency ranking entry.
	PGERow = core.PGERow
	// ClassifierName identifies a detector family (DT, kNN, SVM, EGB, RF).
	ClassifierName = core.ClassifierName
	// Metrics holds classification quality measures.
	Metrics = ml.Metrics
	// LabelResult is the ground-truth labeling output.
	LabelResult = label.Result
	// LabelMethod identifies which labeling stage produced a label.
	LabelMethod = label.Method
	// APIServer is the HTTP emulation of the Twitter developer APIs.
	APIServer = twitterapi.Server
	// APIClient consumes the emulated Twitter APIs.
	APIClient = twitterapi.Client
	// HoneypotDeployment is the traditional-honeypot baseline.
	HoneypotDeployment = honeypot.Deployment
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = experiments.Runner
	// OnlineDetector retrains on a sliding window of labeled captures,
	// the paper's §IV-C answer to the Twitter spammer-drift problem.
	OnlineDetector = core.OnlineDetector
	// Tracer records per-capture pipeline traces (DESIGN.md §11).
	Tracer = trace.Tracer
	// TraceConfig parameterizes a Tracer.
	TraceConfig = trace.Config
	// MetricsRegistry aggregates the runtime's instrumentation; mount its
	// Handler at /metrics.
	MetricsRegistry = metrics.Registry
	// CaptureStore is the bounded ring retaining collected captures.
	CaptureStore = core.CaptureStore
	// LabelStore is the incremental labeling index behind the streaming
	// label stage.
	LabelStore = label.Store
	// IngestSource is one pluggable ingestion stream (DESIGN.md §17):
	// twitter (the in-process engine), reddit (the synthetic Reddit-like
	// firehose), replay (a recorded capture WAL), or a mux of several.
	IngestSource = source.Source
)

// NewMetricsRegistry creates an isolated metrics registry; pass it through
// SnifferConfig.Metrics to keep a sniffer's instrumentation off the
// process-wide default registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewTracer creates a pipeline tracer; pass it through SnifferConfig.Tracer
// and mount its Handler at /debug/traces.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// NewOnlineDetector creates a drift-aware detector of the named family
// with the given sliding-window size and retraining cadence.
func NewOnlineDetector(name ClassifierName, window, retrainEvery int, seed int64) (*OnlineDetector, error) {
	return core.NewOnlineDetector(name, window, retrainEvery, seed)
}

// Streaming pipeline defaults (see StreamConfig).
const (
	DefaultStreamBatchSize     = pipeline.DefaultFlushSize
	DefaultStreamFlushInterval = pipeline.DefaultFlushInterval
)

// Classifier family names (the paper's Table IV rows).
const (
	ClassifierDT  = core.ClassifierDT
	ClassifierKNN = core.ClassifierKNN
	ClassifierSVM = core.ClassifierSVM
	ClassifierEGB = core.ClassifierEGB
	ClassifierRF  = core.ClassifierRF
)

// DefaultConfig returns the scaled-down default world configuration.
func DefaultConfig() Config { return socialnet.DefaultConfig() }

// FullScaleConfig approximates the paper's deployment scale.
func FullScaleConfig() Config { return socialnet.FullScaleConfig() }

// StandardSpecs builds the paper's 2,400-node deployment plan scaled by
// nodesPerValue (10 reproduces the paper's budget exactly).
func StandardSpecs(nodesPerValue int) []SelectorSpec {
	return core.StandardSpecs(nodesPerValue)
}

// RandomSpec builds the non-pseudo-honeypot baseline plan: n random nodes.
func RandomSpec(n int) []SelectorSpec { return core.RandomSpec(n) }

// Simulation couples a generated world with its traffic engine.
type Simulation struct {
	world  *socialnet.World
	engine *socialnet.Engine
}

// NewSimulation generates a world from cfg and prepares its engine.
func NewSimulation(cfg Config) (*Simulation, error) {
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{world: w, engine: socialnet.NewEngine(w)}, nil
}

// World returns the simulated network.
func (s *Simulation) World() *World { return s.world }

// Now returns the current virtual time.
func (s *Simulation) Now() time.Time { return s.engine.Now() }

// RunHours advances the simulation by n hours of traffic.
func (s *Simulation) RunHours(n int) { s.engine.RunHours(n) }

// Subscribe delivers every generated tweet to fn (read-only) and returns a
// cancel function.
func (s *Simulation) Subscribe(fn func(*Tweet)) (cancel func()) {
	return s.engine.Subscribe(fn)
}

// NewAPIServer exposes the simulation over the emulated Twitter API.
// Advance simulated hours through the server (or POST /sim/advance.json)
// rather than calling RunHours directly once handlers are attached.
func (s *Simulation) NewAPIServer(opts ...twitterapi.ServerOption) *APIServer {
	return twitterapi.NewServer(s.engine, opts...)
}

// StreamConfig parameterizes the sniffer's staged streaming runtime
// (DESIGN.md §12). Zero values take the pipeline package defaults.
type StreamConfig struct {
	// Enabled runs the sniffer on the stage graph: match → feature →
	// label → detect, with micro-batching and backpressure. Disabled
	// (the default) keeps the synchronous batch path.
	Enabled bool
	// BatchSize is the micro-batch flush size bound (default 64).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits for more
	// items (default 25ms).
	FlushInterval time.Duration
	// QueueDepth bounds each stage's input queue (default 4×BatchSize).
	// Push blocks while a queue is full, pausing the stream reader —
	// the backpressure contract.
	QueueDepth int
}

// SnifferConfig parameterizes a pseudo-honeypot sniffer.
type SnifferConfig struct {
	// Specs is the deployment plan; nil uses StandardSpecs(2).
	Specs []SelectorSpec
	// Classifier selects the detector family; empty uses RF, the
	// paper's choice.
	Classifier ClassifierName
	// Seed drives selection sampling and model training.
	Seed int64
	// ManualLabelErrorRate is the simulated human-annotator error rate
	// used during ground-truth labeling.
	ManualLabelErrorRate float64
	// NaiveSelection disables the pseudo-honeypot selection refinements
	// (Active-status screening and ratio hygiene). The paper's
	// "non pseudo-honeypot" baseline selects accounts naively.
	NaiveSelection bool
	// CaptureCap bounds how many captures the monitor retains; past the
	// cap the oldest is evicted (FIFO). Zero keeps everything.
	CaptureCap int
	// Stream selects and tunes the staged streaming runtime.
	Stream StreamConfig
	// Sources overrides the sniffer's ingestion: instead of subscribing
	// to the simulation's engine (the implicit twitter source), the
	// sniffer consumes the given sources — several are merged with
	// deterministic k-way ordering. Requires Stream.Enabled; a replay
	// source must be the sole entry. When Sources is set the sim argument
	// to NewSniffer may be nil (replayed runs have no live simulation).
	Sources []IngestSource
	// Shards partitions the honeypot node set across N shard workers by
	// consistent hashing on node id, each running its own stream filter
	// and staged pipeline, with a coordinator merging the capture streams
	// back into the deterministic single-monitor order (DESIGN.md §15).
	// Values above 1 require Stream.Enabled. Zero or 1 keeps the
	// unsharded topology (unless ShardMode forces proc workers).
	Shards int
	// ShardMode selects how shards are isolated: "inproc" (the default)
	// runs goroutine-isolated shards in this process; "proc" runs one
	// worker subprocess per shard speaking the HTTP/NDJSON epoch wire.
	// Proc mode requires driving the run through Sniffer.RunHours and is
	// incompatible with Durability.
	ShardMode string
	// Durability enables the WAL + checkpoint store so a crashed run can
	// be resumed without losing captures (requires Stream.Enabled).
	Durability DurabilityConfig
	// Online, when set with streaming enabled, receives every capture
	// and its stream-time provisional label from the detect stage,
	// retraining on its sliding window as the stream drifts.
	Online *OnlineDetector
	// Tracer records per-capture pipeline traces through every stage;
	// nil uses the process-wide trace.Default() (disabled by default).
	Tracer *Tracer
	// Metrics receives the sniffer's instrumentation; nil binds the
	// process-wide metrics.Default() registry.
	Metrics *MetricsRegistry
}

// Sniffer is the end-to-end pseudo-honeypot pipeline bound to a
// simulation: node selection with hourly rotation, mention monitoring,
// labeling, training, and classification.
type Sniffer struct {
	sim     *Simulation
	monitor *core.Monitor
	cfg     SnifferConfig
	detach  func()

	// Streaming mode only.
	runner     *pipeline.Runner
	ingest     *pipeline.Queue[*core.Capture]
	labelStore *label.Store

	// Ingestion layer (streaming/sharded modes): src delivers the post
	// stream (the implicit twitter adapter unless cfg.Sources was set, in
	// which case explicit is true and lookups/oracles resolve through the
	// source rather than the simulation). srcErr latches the first replay
	// adoption failure; it is delivery-goroutine state, reported by
	// RunHours and DetectAll.
	src      source.Source
	explicit bool
	srcIns   *sourceInstruments
	srcErr   error

	// Profile-epilogue bookkeeping (Durability.RecordRotations): the
	// accounts every WAL'd capture referenced, in first-appearance order.
	// Touched only by the stage goroutine that appends to the WAL, then
	// read at Close after the stage graph has stopped.
	profSeen map[socialnet.AccountID]struct{}
	profIDs  []socialnet.AccountID

	// Sharded modes only (SnifferConfig.Shards > 1 or ShardMode "proc").
	fanout *shard.Fanout
	proc   *shard.ProcCoordinator

	// Durability (WAL + checkpoints), nil/zero when disabled. watermark
	// is the highest durably-accounted tweet id at startup: the re-run
	// simulation's tweets at or below it are already in the restored
	// state and are skipped by the subscribe callback. lastCaptured
	// tracks the newest captured tweet id; both are engine-goroutine
	// state (set once at recovery, then only touched by engine hooks).
	store        *store.Store
	recovery     *store.Recovery
	watermark    socialnet.TweetID
	lastCaptured socialnet.TweetID
	ckptEvery    int

	closeOnce sync.Once
}

// Validate checks the configuration's cross-field constraints — every
// rule NewSniffer enforces, collected in one place: shard-mode naming,
// the streaming prerequisites of sharding, durability, and explicit
// sources, and the source-composition rules (a replay source rides
// alone). A zero SnifferConfig is valid.
func (cfg SnifferConfig) Validate() error {
	switch cfg.ShardMode {
	case "", "inproc", "proc":
	default:
		return fmt.Errorf("pseudohoneypot: unknown shard mode %q", cfg.ShardMode)
	}
	if (cfg.Shards > 1 || cfg.ShardMode == "proc") && !cfg.Stream.Enabled {
		return errors.New("pseudohoneypot: sharding requires the streaming pipeline (set Stream.Enabled)")
	}
	if cfg.ShardMode == "proc" && cfg.Durability.enabled() {
		return errors.New("pseudohoneypot: proc shard mode does not support durability")
	}
	if cfg.Durability.enabled() && !cfg.Stream.Enabled {
		return errors.New("pseudohoneypot: durability requires the streaming pipeline (set Stream.Enabled)")
	}
	if cfg.Durability.RecordRotations && !cfg.Durability.enabled() {
		return errors.New("pseudohoneypot: RecordRotations requires a durable store (set Durability.Dir or Backend)")
	}
	if len(cfg.Sources) > 0 {
		if !cfg.Stream.Enabled {
			return errors.New("pseudohoneypot: explicit Sources require the streaming pipeline (set Stream.Enabled)")
		}
		if cfg.ShardMode == "proc" {
			return errors.New("pseudohoneypot: proc shard mode does not support explicit Sources")
		}
		if cfg.Durability.enabled() {
			return errors.New("pseudohoneypot: explicit Sources do not support durability (record with the implicit twitter source, then replay)")
		}
		for _, src := range cfg.Sources {
			if src == nil {
				return errors.New("pseudohoneypot: nil entry in Sources")
			}
			if _, ok := src.(source.ReplayBacked); ok {
				if len(cfg.Sources) > 1 {
					return errors.New("pseudohoneypot: a replay source must be the sole source")
				}
				if cfg.Shards > 1 {
					return errors.New("pseudohoneypot: a replay source cannot be sharded")
				}
			}
		}
	}
	return nil
}

// NewSniffer attaches a sniffer to the simulation. The node set rotates at
// every simulated hour automatically. sim may be nil only when
// cfg.Sources supplies the ingestion (a replayed run has no simulation).
func NewSniffer(sim *Simulation, cfg SnifferConfig) (*Sniffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	explicit := len(cfg.Sources) > 0
	if sim == nil && !explicit {
		return nil, errors.New("pseudohoneypot: nil simulation")
	}
	if len(cfg.Specs) == 0 {
		cfg.Specs = core.StandardSpecs(2)
	}
	if cfg.Classifier == "" {
		cfg.Classifier = core.ClassifierRF
	}
	if cfg.ManualLabelErrorRate == 0 {
		cfg.ManualLabelErrorRate = 0.01
	}
	mcfg := core.MonitorConfig{
		Specs:      cfg.Specs,
		ActiveOnly: true,
		Seed:       cfg.Seed,
		CaptureCap: cfg.CaptureCap,
		Metrics:    cfg.Metrics,
		Tracer:     cfg.Tracer,
	}
	if cfg.NaiveSelection {
		mcfg.ActiveOnly = false
		mcfg.MaxRatio = -1
	}
	// Resolve the ingest source: caller-provided (muxed when several) or
	// the implicit twitter adapter over the simulation's engine. The
	// synchronous batch path needs no source at all.
	var src source.Source
	switch {
	case len(cfg.Sources) == 1:
		src = cfg.Sources[0]
	case len(cfg.Sources) > 1:
		src = source.NewMux(cfg.Sources...)
	case cfg.Stream.Enabled:
		src = source.NewTwitter(sim.world, sim.engine)
	}
	// The monitor's node-selection screener comes from the source when
	// the source owns the account population; replayed recordings never
	// rotate, so they run with the null screener.
	var scr core.Screener = source.NullScreener{}
	if !explicit {
		scr = &core.LocalScreener{
			World: sim.world,
			Rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		}
	} else if sc, ok := src.(source.Screening); ok {
		scr = sc.NewScreener(cfg.Seed + 1)
	}
	m := core.NewMonitor(mcfg, scr)
	s := &Sniffer{sim: sim, monitor: m, cfg: cfg, src: src, explicit: explicit}
	s.srcIns = newSourceInstruments(cfg.Metrics)
	if cfg.Durability.enabled() {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	switch {
	case cfg.ShardMode == "proc":
		if err := s.attachProc(); err != nil {
			return nil, err
		}
	case cfg.Shards > 1:
		s.attachSharded()
	case cfg.Stream.Enabled:
		s.attachStreaming()
	default:
		s.detach = core.Attach(m, sim.engine)
	}
	if s.store != nil {
		if err := s.recoverDurable(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// labeledCapture pairs a capture with its stream-time provisional label on
// the label→detect queue.
type labeledCapture struct {
	c    *core.Capture
	spam bool
}

// labelConfig is the labeling configuration shared by the batch oracle and
// the streaming store — identical by construction so the two paths agree.
func (s *Sniffer) labelConfig() label.Config {
	lcfg := label.DefaultConfig()
	lcfg.Tracer = s.cfg.Tracer
	return lcfg
}

// attachStreaming wires the stage graph and subscribes the monitor's match
// step to the ingest source. Stage topology (DESIGN.md §12):
//
//	source ─→ match (delivery goroutine) ─→ [feature] ─→ [label] ─→ [detect]
//
// Match stays on the delivery goroutine (it mutates group stats that
// Rotate reads there); everything downstream runs on stage goroutines
// against profile snapshots frozen at match time.
func (s *Sniffer) attachStreaming() {
	m, cfg, src := s.monitor, s.cfg, s.src
	runner := pipeline.NewRunner(pipeline.Config{
		FlushSize:     cfg.Stream.BatchSize,
		FlushInterval: cfg.Stream.FlushInterval,
		QueueCap:      cfg.Stream.QueueDepth,
		Metrics:       cfg.Metrics,
		Tracer:        cfg.Tracer,
		Source:        src.ID(),
	})
	qFeature := pipeline.NewQueue[*core.Capture](runner, "feature")
	qLabel := pipeline.NewQueue[*core.Capture](runner, "label")
	qDetect := pipeline.NewQueue[labeledCapture](runner, "detect")

	pipeline.Through(runner, "feature", qFeature, qLabel,
		func(batch []*core.Capture) []*core.Capture {
			for _, c := range batch {
				m.ExtractCapture(c)
				m.Store().Append(c)
				if s.store != nil {
					// WAL the capture in extraction order — the order
					// recovery must replay to rebuild extractor state.
					s.walAppend(c)
				}
			}
			return batch
		})

	ls := label.NewStore(s.labelConfig())
	if s.explicit {
		// Caller-provided sources resolve user ids through the source at
		// Snapshot time (mux namespacing, replay epilogue profiles); the
		// implicit twitter path keeps the store's default live pointers.
		ls.SetResolver(src.Lookup)
	}
	pipeline.Through(runner, "label", qLabel, qDetect,
		func(batch []*core.Capture) []labeledCapture {
			tweets := make([]*socialnet.Tweet, len(batch))
			authors := make([]*socialnet.Account, len(batch))
			profiles := make([]*socialnet.Account, len(batch))
			for i, c := range batch {
				tweets[i] = c.Tweet
				authors[i] = c.Sender
				profiles[i] = c.SenderSnapshot()
			}
			provisional := ls.AddBatch(tweets, authors, profiles)
			out := make([]labeledCapture, len(batch))
			for i, c := range batch {
				out[i] = labeledCapture{c: c, spam: provisional[i]}
			}
			return out
		})

	online := cfg.Online
	pipeline.Sink(runner, "detect", qDetect, func(batch []labeledCapture) {
		if online == nil {
			return
		}
		for _, lc := range batch {
			// Errors only surface before the window holds both
			// classes; the window still fills, so ignore them.
			_ = online.Observe(lc.c, lc.spam)
		}
	})
	runner.Start()

	src.OnHourStart(s.rotateHour)
	cancel := src.Subscribe(func(p source.Post) {
		if c := s.matchPost(p); c != nil {
			// Blocking push is the backpressure contract: a full
			// feature queue pauses the firehose right here.
			_ = qFeature.Push(c)
		}
	})
	s.runner, s.ingest, s.labelStore, s.detach = runner, qFeature, ls, cancel
}

// attachSharded wires the in-process sharded topology (DESIGN.md §15):
// the match step stays on the engine goroutine and routes each capture to
// its owning shard by consistent hashing on the receiver node; shards run
// stateless extraction and label precompute concurrently; the coordinator
// merges by ingest sequence number and runs the order-dependent stages,
// so every downstream structure evolves exactly as in the 1-shard run.
//
//	source ─→ match ─ring─→ shard 1..N [extract] ─→ [merge]─[label]─[detect]
func (s *Sniffer) attachSharded() {
	m, cfg, src := s.monitor, s.cfg, s.src
	ls := label.NewStore(s.labelConfig())
	if s.explicit {
		ls.SetResolver(src.Lookup)
	}
	online := cfg.Online
	f := shard.NewFanout(shard.FanoutConfig{
		Shards: cfg.Shards,
		Pipeline: pipeline.Config{
			FlushSize:     cfg.Stream.BatchSize,
			FlushInterval: cfg.Stream.FlushInterval,
			QueueCap:      cfg.Stream.QueueDepth,
			Metrics:       cfg.Metrics,
			Tracer:        cfg.Tracer,
			Source:        src.ID(),
		},
		Monitor: m,
		Prepper: label.NewPrepper(s.labelConfig()),
		Complete: func(it *shard.Item) {
			m.CompleteCapture(it.C, it.Vec)
			m.Store().Append(it.C)
			if s.store != nil {
				// The merge stage restores ingest order, so the WAL sees
				// captures in exactly the order recovery must replay.
				s.walAppend(it.C)
			}
		},
		Label: func(items []shard.Item) []bool {
			tweets := make([]*socialnet.Tweet, len(items))
			authors := make([]*socialnet.Account, len(items))
			profiles := make([]*socialnet.Account, len(items))
			tweetPreps := make([]label.TweetPrep, len(items))
			userPreps := make([]*label.UserPrep, len(items))
			for i, it := range items {
				tweets[i] = it.C.Tweet
				authors[i] = it.C.Sender
				profiles[i] = it.C.SenderSnapshot()
				tweetPreps[i] = it.TweetPrep
				userPreps[i] = it.UserPrep
			}
			return ls.AddBatchPrepared(tweets, authors, profiles, tweetPreps, userPreps)
		},
		Observe: func(c *core.Capture, spam bool) {
			if online != nil {
				_ = online.Observe(c, spam)
			}
		},
	})

	src.OnHourStart(s.rotateHour)
	cancel := src.Subscribe(func(p source.Post) {
		if c := s.matchPost(p); c != nil {
			f.Ingest(c)
		}
	})
	s.fanout, s.labelStore, s.detach = f, ls, cancel
}

// attachProc wires the separate-process sharded topology: the coordinator
// taps the stream on the engine goroutine, buffering candidates encoded at
// emit time, and Sniffer.RunHours flushes one epoch per simulated hour to
// the worker fleet (spawned by re-executing this binary — see
// shard.MaybeWorker).
func (s *Sniffer) attachProc() error {
	m, cfg := s.monitor, s.cfg
	ls := label.NewStore(s.labelConfig())
	online := cfg.Online
	world := s.sim.world
	pc, err := shard.NewProcCoordinator(shard.ProcConfig{
		Shards:  cfg.Shards,
		Lookup:  world.Account,
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
		Apply: func(batch []shard.Merged) error {
			tweets := make([]*socialnet.Tweet, len(batch))
			authors := make([]*socialnet.Account, len(batch))
			profiles := make([]*socialnet.Account, len(batch))
			tweetPreps := make([]label.TweetPrep, len(batch))
			userPreps := make([]*label.UserPrep, len(batch))
			caps := make([]*core.Capture, len(batch))
			for i, mg := range batch {
				c, err := m.AdoptCapture(mg.Tweet, mg.Sender, mg.Receiver, mg.Groups, world.Account)
				if err != nil {
					return err
				}
				c.Source = mg.Origin
				m.CompleteCapture(c, mg.Vec)
				m.Store().Append(c)
				caps[i] = c
				tweets[i] = c.Tweet
				authors[i] = c.Sender
				profiles[i] = c.SenderSnapshot()
				tweetPreps[i] = mg.TweetPrep
				userPreps[i] = mg.UserPrep
			}
			// One epoch is one label batch; AddBatchPrepared's ingest is
			// batching-invariant, so the result matches the streaming
			// micro-batches bit for bit.
			spam := ls.AddBatchPrepared(tweets, authors, profiles, tweetPreps, userPreps)
			if online != nil {
				for i, c := range caps {
					_ = online.Observe(c, spam[i])
				}
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	s.sim.engine.OnHourStart(func(hour int, now time.Time) {
		// Rotation barrier: the previous epoch was flushed before this
		// hook can run, and the new assignment reaches the tap before any
		// of the hour's traffic.
		m.Rotate(now, time.Hour)
		pc.BeginEpoch(m.CurrentNodes())
	})
	cancel := s.sim.engine.Subscribe(pc.OnTweet)
	s.proc, s.labelStore, s.detach = pc, ls, cancel
	return nil
}

// RunHours advances the simulation n hours through the sniffer. For the
// separate-process shard mode this is the only way to advance time (each
// hour's captures are flushed to the worker fleet at the hour boundary);
// every other mode is equivalent to Simulation.RunHours.
func (s *Sniffer) RunHours(n int) error {
	if s.proc != nil {
		for i := 0; i < n; i++ {
			s.sim.engine.RunHours(1)
			if err := s.proc.FlushEpoch(); err != nil {
				return err
			}
		}
		return nil
	}
	if s.src != nil {
		if err := s.src.RunHours(n); err != nil {
			return err
		}
		return s.srcErr
	}
	s.sim.RunHours(n)
	return nil
}

// drainPipeline blocks until every capture ingested so far has cleared
// whichever stage topology is attached.
func (s *Sniffer) drainPipeline() {
	if s.fanout != nil {
		s.fanout.Drain()
		return
	}
	if s.runner != nil {
		s.runner.Drain()
	}
}

// Close detaches the sniffer from the simulation's stream and, in
// streaming mode, shuts the stage graph down.
func (s *Sniffer) Close() {
	s.closeOnce.Do(func() {
		s.detach()
		if s.runner != nil {
			s.ingest.Close()
			s.runner.Wait()
		}
		if s.fanout != nil {
			s.fanout.Close()
		}
		if s.proc != nil {
			_ = s.proc.Close()
		}
		if s.explicit {
			// The implicit twitter adapter holds no resources; explicit
			// sources (reddit engines, replay logs, muxes) do.
			_ = s.src.Close()
		}
		if s.store != nil {
			// The stage graph has stopped appending: stamp the profile
			// epilogue (replay labels suspensions against end-of-run
			// profiles), then sync the WAL tail and release the lock.
			s.writeProfileEpilogue()
			_ = s.store.Close()
		}
	})
}

// Monitor exposes the underlying monitor (groups, captures, PGE inputs).
func (s *Sniffer) Monitor() *Monitor { return s.monitor }

// ShardAdminURLs returns the admin base URLs of the proc-mode shard
// workers (each serves /metrics, /healthz, and /debug/traces on its
// loopback epoch-wire listener), indexed by shard. Nil outside proc mode.
// A respawned worker changes its entry, so callers should re-read rather
// than cache — the fleet federator's Targets hook does exactly that.
func (s *Sniffer) ShardAdminURLs() []string {
	if s.proc == nil {
		return nil
	}
	return s.proc.AdminURLs()
}

// HealthExtra returns the /healthz hook reporting the durable store's WAL
// status (last checkpoint seq, segment count, last fsync error), or nil
// when the sniffer runs without -store-dir.
func (s *Sniffer) HealthExtra() func(*metrics.Health) {
	if s.store == nil {
		return nil
	}
	return s.store.HealthExtra()
}

// DetectionResult is the outcome of DetectAll.
type DetectionResult struct {
	// Captures is the number of collected tweets.
	Captures int
	// Spams is the number classified as spam.
	Spams int
	// Spammers is the number of distinct detected spam accounts.
	Spammers int
	// Labels is the ground-truth labeling used for training.
	Labels *LabelResult
	// PGE ranks every selector group by garner efficiency.
	PGE []PGERow
}

// DetectAll runs the paper's detection pipeline on everything collected so
// far: label the corpus (suspended accounts, clustering, rules, simulated
// manual checking), train the configured classifier, classify all
// captures, and attribute spam to selector groups. In streaming mode it
// first drains the stage graph — every streamed tweet is featurized,
// stored, and indexed before reporting — then snapshots the incremental
// label store instead of re-clustering from scratch.
func (s *Sniffer) DetectAll() (*DetectionResult, error) {
	s.drainPipeline()
	if s.srcErr != nil {
		return nil, s.srcErr
	}
	captures := s.monitor.Captures()
	if len(captures) == 0 {
		return nil, errors.New("pseudohoneypot: nothing captured yet")
	}
	var oracle label.Oracle
	if s.explicit {
		// Multi-source and replayed runs have no single live world; the
		// manual-check oracle resolves accounts through the source. The
		// flip hash depends only on ids and the seed, so a replay's
		// manual checks agree with its recording.
		oracle = label.NewNoisyLookupOracle(s.src.Lookup, s.cfg.ManualLabelErrorRate, s.cfg.Seed+2)
	} else {
		oracle = label.NewNoisyOracle(s.sim.world, s.cfg.ManualLabelErrorRate, s.cfg.Seed+2)
	}
	var labels *label.Result
	if s.labelStore != nil {
		labels = s.labelStore.Snapshot(oracle)
		adoptLabelSpans(s.labelStore.LastTrace(), captures)
	} else {
		tweets := make([]*socialnet.Tweet, len(captures))
		for i, c := range captures {
			tweets[i] = c.Tweet
		}
		corpus := label.NewCorpus(tweets, s.sim.world.Account)
		lp := label.NewPipeline(s.labelConfig())
		labels = lp.Run(corpus, oracle)
		adoptLabelSpans(lp.LastTrace(), captures)
	}

	clf, err := core.NewClassifier(s.cfg.Classifier, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(clf)
	det.SetTracer(s.cfg.Tracer)
	if err := det.Train(captures, labels); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	verdicts := det.Classify(captures)
	s.monitor.AttributeSpam(verdicts)

	res := &DetectionResult{
		Captures: len(captures),
		Labels:   labels,
		PGE:      core.ComputePGE(s.monitor.Groups()),
	}
	spammers := make(map[socialnet.AccountID]struct{})
	for i, v := range verdicts {
		if v {
			res.Spams++
			spammers[captures[i].Tweet.AuthorID] = struct{}{}
		}
	}
	res.Spammers = len(spammers)
	return res, nil
}

// adoptLabelSpans copies the labeling-pass spans of a batch label trace
// into every capture trace that fed the corpus, so each capture's journey
// shows the labeling work done on it. Adopted spans are marked with a
// batch attribute carrying the label trace's id.
func adoptLabelSpans(labelTrace *trace.Trace, captures []*core.Capture) {
	if labelTrace == nil {
		return
	}
	info := labelTrace.Snapshot()
	batch := trace.KV{Key: "batch", Value: info.ID}
	for _, c := range captures {
		if c.Trace == nil {
			continue
		}
		for _, sp := range info.Spans {
			if !strings.HasPrefix(sp.Stage, "label_") {
				continue // skip parallel_batch bookkeeping spans
			}
			c.Trace.AddSpan(sp.Stage, sp.Start, sp.End(), batch)
		}
	}
}

// NewExperiments creates a runner that regenerates the paper's tables and
// figures at the named scale ("small", "medium", or "full").
func NewExperiments(scaleName string) (*ExperimentRunner, error) {
	scale, ok := experiments.ScaleByName(scaleName)
	if !ok {
		return nil, fmt.Errorf("pseudohoneypot: unknown scale %q", scaleName)
	}
	return experiments.NewRunner(scale), nil
}
