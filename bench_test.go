package pseudohoneypot

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/pseudo-honeypot/pseudohoneypot/internal/core"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/experiments"
	"github.com/pseudo-honeypot/pseudohoneypot/internal/socialnet"
)

// The per-table/per-figure benchmarks share one experiments runner: the
// heavy simulation phases execute once (outside the timed region) and each
// benchmark times the regeneration of its table or figure, reporting the
// headline quantity of that experiment as a custom metric.
var (
	_benchOnce   sync.Once
	_benchRunner *experiments.Runner
)

func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	_benchOnce.Do(func() {
		_benchRunner = experiments.NewRunner(experiments.SmallScale())
	})
	return _benchRunner
}

// BenchmarkTableII regenerates the attribute sample-value selection table.
func BenchmarkTableII(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the ground-truth labeling breakdown.
func BenchmarkTableIII(b *testing.B) {
	r := benchRunner(b)
	warmGroundTruth(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableIII(); err != nil {
			b.Fatal(err)
		}
	}
	gt, _ := r.RunGroundTruth()
	b.ReportMetric(float64(gt.Labels.TotalSpams()), "labeled-spams")
}

// BenchmarkTableIV regenerates the five-classifier 10-fold comparison.
func BenchmarkTableIV(b *testing.B) {
	r := benchRunner(b)
	warmGroundTruth(b, r)
	if _, err := r.RunTableIV(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
	metrics, _ := r.RunTableIV()
	b.ReportMetric(metrics[core.ClassifierRF].Precision, "rf-precision")
	b.ReportMetric(metrics[core.ClassifierRF].FPR, "rf-fpr")
}

// BenchmarkTableV regenerates the top-attributes-by-spammers table.
func BenchmarkTableV(b *testing.B) {
	r := benchRunner(b)
	warmMain(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableV(); err != nil {
			b.Fatal(err)
		}
	}
	main, _ := r.RunMain()
	b.ReportMetric(float64(main.Spammers), "detected-spammers")
}

// BenchmarkTableVI regenerates the PGE ranking.
func BenchmarkTableVI(b *testing.B) {
	r := benchRunner(b)
	warmMain(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableVI(); err != nil {
			b.Fatal(err)
		}
	}
	main, _ := r.RunMain()
	if len(main.PGERows) > 0 {
		b.ReportMetric(main.PGERows[0].PGE, "top-pge")
	}
}

// BenchmarkTableVII regenerates the honeypot comparison.
func BenchmarkTableVII(b *testing.B) {
	r := benchRunner(b)
	warmAdvanced(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableVII(); err != nil {
			b.Fatal(err)
		}
	}
	adv, _ := r.RunAdvanced()
	if adv.HoneypotPGE > 0 {
		b.ReportMetric(adv.AdvancedPGE/adv.HoneypotPGE, "pge-speedup-vs-honeypot")
	}
}

// BenchmarkFigure2 regenerates the spams-per-spammer distribution.
func BenchmarkFigure2(b *testing.B) {
	r := benchRunner(b)
	warmMain(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
	main, _ := r.RunMain()
	ones := 0
	for _, n := range main.SpamsPerSpammer {
		if n == 1 {
			ones++
		}
	}
	if len(main.SpamsPerSpammer) > 0 {
		b.ReportMetric(float64(ones)/float64(len(main.SpamsPerSpammer)), "single-spam-frac")
	}
}

// BenchmarkFigure3 regenerates the 11 per-attribute panels.
func BenchmarkFigure3(b *testing.B) {
	r := benchRunner(b)
	warmMain(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the hashtag-category panel.
func BenchmarkFigure4(b *testing.B) {
	r := benchRunner(b)
	warmMain(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the trending-category panel.
func BenchmarkFigure5(b *testing.B) {
	r := benchRunner(b)
	warmMain(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates the advanced-vs-random capture curves.
func BenchmarkFigure6(b *testing.B) {
	r := benchRunner(b)
	warmAdvanced(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
	adv, _ := r.RunAdvanced()
	if adv.RandomSpammers > 0 {
		b.ReportMetric(float64(adv.AdvancedSpammers)/float64(adv.RandomSpammers),
			"advanced-vs-random")
	}
}

func warmGroundTruth(b *testing.B, r *experiments.Runner) {
	b.Helper()
	if _, err := r.RunGroundTruth(); err != nil {
		b.Fatal(err)
	}
}

func warmMain(b *testing.B, r *experiments.Runner) {
	b.Helper()
	if _, err := r.RunMain(); err != nil {
		b.Fatal(err)
	}
}

func warmAdvanced(b *testing.B, r *experiments.Runner) {
	b.Helper()
	if _, err := r.RunAdvanced(); err != nil {
		b.Fatal(err)
	}
}

// --- Phase benchmarks: the actual simulation cost of each experiment ---

// BenchmarkPhaseEngineHour times one hour of world traffic.
func BenchmarkPhaseEngineHour(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumAccounts = 4000
	cfg.OrganicTweetsPerHour = 800
	sim, err := NewSimulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunHours(1)
	}
}

// BenchmarkPhaseSelection times one full standard-network rotation.
func BenchmarkPhaseSelection(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumAccounts = 6000
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewMonitor(core.MonitorConfig{
		Specs:      core.StandardSpecs(2),
		ReuseNodes: true,
		Seed:       1,
	}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rotate(now, time.Hour)
	}
}

// BenchmarkPhaseDetect times end-to-end label+train+classify on a fresh
// small corpus.
func BenchmarkPhaseDetect(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumAccounts = 2000
	cfg.OrganicTweetsPerHour = 400
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, err := NewSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sniffer, err := NewSniffer(sim, SnifferConfig{
			Specs: RandomSpec(100),
			Seed:  int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.RunHours(6)
		b.StartTimer()
		if _, err := sniffer.DetectAll(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		sniffer.Close()
	}
}

// --- Ablation benches (DESIGN.md §5): each reports the quality impact of
// one design choice as a custom metric. ---

// ablationYield measures spammer yield per node-hour for a monitor config
// over a fixed world and duration, scoring with generative ground truth so
// ablations isolate the monitoring design from detector quality. With
// static set, the node set is selected once and held for the whole run
// instead of rotating hourly.
func ablationYield(b *testing.B, hours int, static bool, mutate func(*core.MonitorConfig)) (pge, contamination float64) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.NumAccounts = 4000
	cfg.OrganicTweetsPerHour = 800
	w, err := socialnet.NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e := socialnet.NewEngine(w)
	mcfg := core.MonitorConfig{
		Specs:      core.StandardSpecs(2),
		ActiveOnly: true,
		Seed:       1,
	}
	if mutate != nil {
		mutate(&mcfg)
	}
	m := core.NewMonitor(mcfg, &core.LocalScreener{
		World: w, Rng: rand.New(rand.NewSource(2)),
	})
	var detach func()
	if static {
		e.OnHourStart(func(hour int, now time.Time) {
			if hour == 0 {
				m.Rotate(now, time.Hour)
			} else {
				m.AccrueHours(time.Hour)
			}
		})
		world := w
		detach = e.Subscribe(func(t *socialnet.Tweet) {
			m.OnTweet(t, world.Account)
		})
	} else {
		detach = core.Attach(m, e)
	}
	defer detach()
	e.RunHours(hours)

	verdicts := make([]bool, len(m.Captures()))
	spamCaptures, spamToSpammerNodes := 0, 0
	for i, c := range m.Captures() {
		verdicts[i] = c.Tweet.Spam
		if c.Tweet.Spam && c.Receiver != nil {
			spamCaptures++
			if c.Receiver.Kind == socialnet.KindSpammer {
				spamToSpammerNodes++
			}
		}
	}
	m.AttributeSpam(verdicts)
	spammers := make(map[socialnet.AccountID]struct{})
	nodeHours := 0.0
	for _, g := range m.Groups() {
		nodeHours += g.NodeHours
		for id := range g.Spammers {
			spammers[id] = struct{}{}
		}
	}
	if spamCaptures > 0 {
		contamination = float64(spamToSpammerNodes) / float64(spamCaptures)
	}
	if nodeHours == 0 {
		return 0, contamination
	}
	return float64(len(spammers)) / nodeHours, contamination
}

// BenchmarkAblationActiveOnly compares active-only selection (paper §III-D)
// against selection over all accounts.
func BenchmarkAblationActiveOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withActive, _ := ablationYield(b, 12, false, nil)
		withoutActive, _ := ablationYield(b, 12, false, func(c *core.MonitorConfig) {
			c.ActiveOnly = false
		})
		b.ReportMetric(withActive, "pge-active-only")
		b.ReportMetric(withoutActive, "pge-any-account")
	}
}

// BenchmarkAblationRotation compares hourly rotation (portability,
// paper §III-D) against a truly static node set selected once and held for
// the whole run.
func BenchmarkAblationRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rotating, _ := ablationYield(b, 24, false, nil)
		static, _ := ablationYield(b, 24, true, nil)
		b.ReportMetric(rotating, "pge-rotating")
		b.ReportMetric(static, "pge-static")
	}
}

// BenchmarkAblationHygiene compares selection hygiene (friend/follower
// ratio bound) against unfiltered selection.
func BenchmarkAblationHygiene(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, withCont := ablationYield(b, 12, false, nil)
		without, withoutCont := ablationYield(b, 12, false, func(c *core.MonitorConfig) {
			c.MaxRatio = -1
		})
		b.ReportMetric(with, "pge-hygiene")
		b.ReportMetric(without, "pge-no-hygiene")
		b.ReportMetric(withCont, "spam-to-spammer-nodes-hygiene")
		b.ReportMetric(withoutCont, "spam-to-spammer-nodes-no-hygiene")
	}
}

// BenchmarkAblationMentionOnly quantifies the paper's §III-E design choice:
// mention-filtered monitoring versus ingesting the full firehose. It
// reports the workload ratio (tweets processed) and the share of the
// world's spam each sees.
func BenchmarkAblationMentionOnly(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumAccounts = 4000
	cfg.OrganicTweetsPerHour = 800
	for i := 0; i < b.N; i++ {
		w, err := socialnet.NewWorld(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e := socialnet.NewEngine(w)
		m := core.NewMonitor(core.MonitorConfig{
			Specs:      core.StandardSpecs(2),
			ActiveOnly: true,
			Seed:       1,
		}, &core.LocalScreener{World: w, Rng: rand.New(rand.NewSource(2))})
		detach := core.Attach(m, e)
		var firehose, firehoseSpam int
		e.Subscribe(func(t *socialnet.Tweet) {
			firehose++
			if t.Spam {
				firehoseSpam++
			}
		})
		e.RunHours(12)
		detach()
		captured := len(m.Captures())
		capturedSpam := 0
		for _, c := range m.Captures() {
			if c.Tweet.Spam {
				capturedSpam++
			}
		}
		if captured > 0 && firehoseSpam > 0 {
			b.ReportMetric(float64(firehose)/float64(captured), "workload-reduction-x")
			b.ReportMetric(float64(capturedSpam)/float64(firehoseSpam), "spam-coverage")
			b.ReportMetric(float64(capturedSpam)/float64(captured), "spam-density-monitored")
			b.ReportMetric(float64(firehoseSpam)/float64(firehose), "spam-density-firehose")
		}
	}
}
