module github.com/pseudo-honeypot/pseudohoneypot

go 1.22
